//! Prior Processing-using-Memory architecture models (paper §8.9, Table 6,
//! and the Fig. 12b multiplication energy-efficiency study).
//!
//! Table 6 compares pLUTo-BSA against Ambit \[84\], SIMDRAM \[75\], LAcc \[96\],
//! and DRISA \[79\] under each design's ideal data layout. The per-operation
//! latencies, capacities, areas, and powers below are the paper's published
//! values (themselves derived from the original works); our benches print
//! them next to the pLUTo numbers measured by this reproduction's
//! simulator.
//!
//! For Fig. 12b the paper plots `# multiplications / J` versus operand bit
//! width. The published Table 6 latencies alone do not reconstruct the
//! figure's ordering, so the energy constants here are *calibrated to the
//! figure's claims* (§8.6: pLUTo beats SIMDRAM at every width because
//! bit-serial multiplication incurs a quadratic number of activations, and
//! beats the PnM baseline for widths ≤ 8 bits); see `EXPERIMENTS.md`.

use std::fmt;

/// Prior PuM architectures of Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PumArch {
    /// Ambit: triple-row-activation bulk bitwise ops.
    Ambit,
    /// SIMDRAM: bit-serial SIMD framework over Ambit primitives.
    Simdram,
    /// LAcc: LUT-based DRAM accelerator for CNNs.
    LAcc,
    /// DRISA: 3T1C/1T1C reconfigurable in-situ accelerator.
    Drisa,
}

impl PumArch {
    /// All four comparison architectures.
    pub const ALL: [PumArch; 4] = [
        PumArch::Ambit,
        PumArch::Simdram,
        PumArch::LAcc,
        PumArch::Drisa,
    ];

    /// Memory capacity in GB (Table 6; DRISA's density limits it to 2 GB).
    pub fn capacity_gb(self) -> f64 {
        match self {
            PumArch::Drisa => 2.0,
            _ => 8.0,
        }
    }

    /// Chip area in mm² (Table 6).
    pub fn area_mm2(self) -> f64 {
        match self {
            PumArch::Ambit => 61.0,
            PumArch::Simdram => 61.1,
            PumArch::LAcc => 54.8,
            PumArch::Drisa => 65.2,
        }
    }

    /// Power in watts (Table 6).
    pub fn power_w(self) -> f64 {
        match self {
            PumArch::Drisa => 98.0,
            _ => 5.3,
        }
    }
}

impl fmt::Display for PumArch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PumArch::Ambit => write!(f, "Ambit"),
            PumArch::Simdram => write!(f, "SIMDRAM"),
            PumArch::LAcc => write!(f, "LAcc"),
            PumArch::Drisa => write!(f, "DRISA"),
        }
    }
}

/// Operations compared in Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum PumOp {
    Not,
    And,
    Or,
    Xor,
    Xnor,
    Add4,
    Mul4,
    Bc4,
    Bc8,
    /// 6-bit-input to 2-bit-output LUT query.
    LutQuery6To2,
    /// 8-bit-input to 8-bit-output LUT query.
    LutQuery8To8,
    /// 8-bit image binarization.
    Binarize8,
    /// 8-bit exponentiation.
    Exp8,
}

impl PumOp {
    /// Every Table 6 row.
    pub const ALL: [PumOp; 13] = [
        PumOp::Not,
        PumOp::And,
        PumOp::Or,
        PumOp::Xor,
        PumOp::Xnor,
        PumOp::Add4,
        PumOp::Mul4,
        PumOp::Bc4,
        PumOp::Bc8,
        PumOp::LutQuery6To2,
        PumOp::LutQuery8To8,
        PumOp::Binarize8,
        PumOp::Exp8,
    ];
}

impl fmt::Display for PumOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PumOp::Not => "NOT",
            PumOp::And => "AND",
            PumOp::Or => "OR",
            PumOp::Xor => "XOR",
            PumOp::Xnor => "XNOR",
            PumOp::Add4 => "4-bit Addition",
            PumOp::Mul4 => "4-bit Multiplication",
            PumOp::Bc4 => "4-bit Bit Counting",
            PumOp::Bc8 => "8-bit Bit Counting",
            PumOp::LutQuery6To2 => "6-bit to 2-bit LUT Query",
            PumOp::LutQuery8To8 => "8-bit to 8-bit LUT Query",
            PumOp::Binarize8 => "8-bit Binarization",
            PumOp::Exp8 => "8-bit Exponentiation",
        };
        f.write_str(s)
    }
}

/// Published Table 6 row-operation latency of `op` on `arch`, in
/// nanoseconds; `None` where the paper marks the operation unsupported.
pub fn published_latency_ns(arch: PumArch, op: PumOp) -> Option<f64> {
    use PumArch::*;
    use PumOp::*;
    let v = match (arch, op) {
        (Ambit, Not) => 135.0,
        (Ambit, And) | (Ambit, Or) => 270.0,
        (Ambit, Xor) | (Ambit, Xnor) => 585.0,
        (Ambit, Add4) => 5081.0,
        (Ambit, Mul4) => 19065.0,
        (Ambit, Bc4) => 2936.0,
        (Ambit, Bc8) => 6901.0,
        (Simdram, Not) => 135.0,
        (Simdram, And) | (Simdram, Or) => 270.0,
        (Simdram, Xor) | (Simdram, Xnor) => 585.0,
        (Simdram, Add4) => 1585.0,
        (Simdram, Mul4) => 7451.0,
        (Simdram, Bc4) => 1156.0,
        (Simdram, Bc8) => 2696.0,
        (LAcc, Not) => 135.0,
        (LAcc, And) | (LAcc, Or) => 270.0,
        (LAcc, Xor) | (LAcc, Xnor) => 450.0,
        (LAcc, Add4) => 1142.3,
        (LAcc, Mul4) => 5365.4,
        (Drisa, Not) => 207.6,
        (Drisa, And) | (Drisa, Or) => 415.2,
        (Drisa, Xor) | (Drisa, Xnor) => 691.9,
        (Drisa, Add4) => 1756.5,
        (Drisa, Mul4) => 8250.1,
        (Drisa, Bc4) => 6649.9,
        (Drisa, Bc8) => 13580.0,
        _ => return None,
    };
    Some(v)
}

/// Published Table 6 latency of `op` on pLUTo-BSA, in nanoseconds (the
/// paper's own column; our benches print these next to the values this
/// reproduction *measures* with its command-level simulator).
pub fn published_pluto_bsa_latency_ns(op: PumOp) -> f64 {
    use PumOp::*;
    match op {
        Not => 105.0,
        And | Or | Xor | Xnor => 165.0,
        Add4 | Mul4 => 1920.0,
        Bc4 => 120.0,
        Bc8 => 1920.0,
        LutQuery6To2 => 480.0,
        LutQuery8To8 | Binarize8 | Exp8 => 1920.0,
    }
}

// ---------------------------------------------------------------------
// Fig. 12b: multiplication energy efficiency versus bit width.
// ---------------------------------------------------------------------

/// Per-element energy of an `n`-bit multiplication on pLUTo-BSA, in nJ.
///
/// Up to 4-bit operands a single 256-row LUT sweep suffices; wider
/// multiplications decompose into `k = ceil(n/4)` 4-bit limbs: `k²` partial
/// products plus `2k(k−1)` LUT additions, all 256-row sweeps. One sweep
/// batch serves 32768 elements (four 8192-slot subarrays, Table 6's
/// 4-subarray-parallel normalization) at 0.645 nJ per element-op.
pub fn pluto_mul_energy_nj(n: u32) -> f64 {
    assert!(n >= 1, "bit width must be positive");
    let k = n.div_ceil(4) as f64;
    let ops = k * k + 2.0 * k * (k - 1.0);
    ops.max(1.0) * 0.645
}

/// Per-element energy of an `n`-bit bit-serial multiplication on SIMDRAM,
/// in nJ: a quadratic number of triple-row activations (§8.6), calibrated
/// so the 4-bit point sits at the paper's Table 6 efficiency ratio
/// (SIMDRAM ≈ 0.94 × pLUTo).
pub fn simdram_mul_energy_nj(n: u32) -> f64 {
    assert!(n >= 1, "bit width must be positive");
    let n = n as f64;
    0.15 * n * n + 0.6 * n
}

/// Per-element energy of an `n`-bit multiplication on the PnM baseline, in
/// nJ: each operation pays a fixed DRAM access quantum (three 32 B column
/// accesses through the HMC crossbar) plus a shallow quadratic multiplier
/// cost on the logic-layer core.
pub fn pnm_mul_energy_nj(n: u32) -> f64 {
    assert!(n >= 1, "bit width must be positive");
    8.0 + 0.02 * (n as f64) * (n as f64)
}

/// Multiplications per joule for the Fig. 12b series.
pub fn mul_ops_per_joule(energy_nj: f64) -> f64 {
    1e9 / energy_nj
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_bitwise_latencies_published() {
        assert_eq!(
            published_latency_ns(PumArch::Ambit, PumOp::And),
            Some(270.0)
        );
        assert_eq!(
            published_latency_ns(PumArch::Simdram, PumOp::Mul4),
            Some(7451.0)
        );
        assert_eq!(published_latency_ns(PumArch::LAcc, PumOp::Xor), Some(450.0));
        assert_eq!(
            published_latency_ns(PumArch::Drisa, PumOp::Bc8),
            Some(13580.0)
        );
    }

    #[test]
    fn unsupported_ops_are_none() {
        // Table 6: "−" indicates the operation is not supported.
        for arch in PumArch::ALL {
            assert_eq!(
                published_latency_ns(arch, PumOp::LutQuery8To8),
                None,
                "{arch}"
            );
            assert_eq!(published_latency_ns(arch, PumOp::Binarize8), None, "{arch}");
            assert_eq!(published_latency_ns(arch, PumOp::Exp8), None, "{arch}");
        }
        assert_eq!(published_latency_ns(PumArch::LAcc, PumOp::Bc4), None);
    }

    #[test]
    fn pluto_xor_matches_and_latency() {
        // Table 6 key result: pLUTo's LUT-based XOR costs the same as AND,
        // while every prior PuM pays ~2x for XOR.
        assert_eq!(
            published_pluto_bsa_latency_ns(PumOp::Xor),
            published_pluto_bsa_latency_ns(PumOp::And)
        );
        for arch in PumArch::ALL {
            let and = published_latency_ns(arch, PumOp::And).unwrap();
            let xor = published_latency_ns(arch, PumOp::Xor).unwrap();
            assert!(xor > and, "{arch}");
        }
    }

    #[test]
    fn drisa_capacity_is_limited() {
        assert_eq!(PumArch::Drisa.capacity_gb(), 2.0);
        assert_eq!(PumArch::Ambit.capacity_gb(), 8.0);
        assert!(PumArch::Drisa.power_w() > 10.0 * PumArch::Ambit.power_w());
    }

    #[test]
    fn fig12b_pluto_beats_simdram_at_every_width() {
        // §8.6: "Executing multiplication in pLUTo leads to better energy
        // efficiency than in SIMDRAM for all evaluated bit widths."
        for n in [1u32, 2, 4, 8, 16, 32] {
            assert!(
                pluto_mul_energy_nj(n) < simdram_mul_energy_nj(n),
                "n={n}: pluto {} vs simdram {}",
                pluto_mul_energy_nj(n),
                simdram_mul_energy_nj(n)
            );
        }
    }

    #[test]
    fn fig12b_pluto_beats_pnm_only_at_low_precision() {
        // §8.6: pLUTo wins for bit width ≤ 8; the PnM baseline wins beyond.
        for n in [1u32, 2, 4, 8] {
            assert!(pluto_mul_energy_nj(n) < pnm_mul_energy_nj(n), "n={n}");
        }
        for n in [16u32, 32] {
            assert!(pluto_mul_energy_nj(n) > pnm_mul_energy_nj(n), "n={n}");
        }
    }

    #[test]
    fn fig12b_simdram_scales_quadratically() {
        // Asymptotically quadratic (the linear term fades with width).
        let e8 = simdram_mul_energy_nj(8);
        let e16 = simdram_mul_energy_nj(16);
        let e32 = simdram_mul_energy_nj(32);
        assert!(e16 / e8 > 3.0 && e16 / e8 < 4.0);
        assert!(e32 / e16 > 3.4 && e32 / e16 < 4.0);
    }

    #[test]
    fn ops_per_joule_inverts_energy() {
        assert!((mul_ops_per_joule(1.0) - 1e9).abs() < 1.0);
        let a = mul_ops_per_joule(pluto_mul_energy_nj(4));
        assert!(a > 1e8 && a < 1e10, "4-bit pLUTo eff {a}");
    }

    #[test]
    fn display_names() {
        assert_eq!(PumArch::Simdram.to_string(), "SIMDRAM");
        assert_eq!(PumOp::Mul4.to_string(), "4-bit Multiplication");
        assert_eq!(PumOp::ALL.len(), 13);
    }
}
