//! Roofline runtime/energy estimation: machine spec × workload profile.
//!
//! `time = serial_time + max(compute_time, memory_time)` — the classic
//! roofline with an Amdahl serial term. Energy is busy power integrated
//! over the runtime. See `DESIGN.md` §1 for why an analytic model stands in
//! for the authors' real CPU/GPU measurements.

use crate::machine::{Machine, MachineKind};
use crate::profile::Profile;

/// Clock rate of the host core that executes serial reductions for the
/// CPU/GPU/FPGA baselines (the CRC merge step, §8.2).
const SERIAL_HOST_HZ: f64 = 2.3e9;

/// A runtime/energy estimate for one workload on one machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Runtime in seconds.
    pub secs: f64,
    /// Energy in joules.
    pub joules: f64,
    /// Throughput in input bytes per second.
    pub bytes_per_sec: f64,
}

/// Estimates the runtime of processing `bytes` of input.
pub fn runtime_secs(machine: &Machine, profile: &Profile, bytes: f64) -> f64 {
    assert!(bytes >= 0.0, "negative input volume");
    let parallel_bytes = bytes * (1.0 - profile.serial_fraction);
    let cycles_per_byte = match machine.kind {
        MachineKind::Cpu => profile.cpu_cycles_per_byte,
        MachineKind::Gpu => profile.gpu_cycles_per_byte,
        MachineKind::Fpga => 1.0 / profile.fpga_bytes_per_cycle,
        MachineKind::Pnm => profile.pnm_cycles_per_byte,
    };
    let compute = parallel_bytes * cycles_per_byte / (machine.freq_hz * machine.lanes);
    let memory = parallel_bytes * profile.mem_traffic_factor / machine.mem_bw;
    // Serial reductions run on the host core (or the PnM logic-layer core).
    let serial_hz = match machine.kind {
        MachineKind::Pnm => machine.freq_hz,
        _ => SERIAL_HOST_HZ,
    };
    let serial = bytes * profile.serial_fraction * profile.cpu_cycles_per_byte / serial_hz;
    serial + compute.max(memory)
}

/// Estimates the energy of processing `bytes` of input.
pub fn energy_joules(machine: &Machine, profile: &Profile, bytes: f64) -> f64 {
    runtime_secs(machine, profile, bytes) * machine.power_w
}

/// Full estimate for one workload on one machine.
pub fn estimate(machine: &Machine, profile: &Profile, bytes: f64) -> Estimate {
    let secs = runtime_secs(machine, profile, bytes);
    Estimate {
        secs,
        joules: secs * machine.power_w,
        bytes_per_sec: if secs > 0.0 {
            bytes / secs
        } else {
            f64::INFINITY
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::profile::{workload_profile, WorkloadId};

    const MB: f64 = 1e6;

    #[test]
    fn gpu_much_faster_than_cpu_on_parallel_workloads() {
        // Fig. 7: the GPU sits orders of magnitude above the CPU for the
        // data-parallel workloads.
        let cpu = Machine::xeon_gold_5118();
        let gpu = Machine::rtx_3080_ti();
        for id in [WorkloadId::Salsa20, WorkloadId::Vmpc, WorkloadId::ImgBin] {
            let p = workload_profile(id);
            let s = runtime_secs(&cpu, &p, 100.0 * MB) / runtime_secs(&gpu, &p, 100.0 * MB);
            assert!(s > 20.0, "{id}: GPU speedup {s}");
        }
    }

    #[test]
    fn crc_serial_reduction_caps_gpu_gains() {
        // §8.2: "The speedup in these workloads is bottlenecked by a serial
        // reduction step".
        let cpu = Machine::xeon_gold_5118();
        let gpu = Machine::rtx_3080_ti();
        let crc = workload_profile(WorkloadId::Crc8);
        let salsa = workload_profile(WorkloadId::Salsa20);
        let crc_speedup =
            runtime_secs(&cpu, &crc, 100.0 * MB) / runtime_secs(&gpu, &crc, 100.0 * MB);
        let salsa_speedup =
            runtime_secs(&cpu, &salsa, 100.0 * MB) / runtime_secs(&gpu, &salsa, 100.0 * MB);
        assert!(crc_speedup < salsa_speedup);
    }

    #[test]
    fn imgbin_is_memory_bound_on_cpu_and_gpu() {
        let gpu = Machine::rtx_3080_ti();
        let p = workload_profile(WorkloadId::ImgBin);
        let t = runtime_secs(&gpu, &p, 100.0 * MB);
        let mem_time = 100.0 * MB * p.mem_traffic_factor / gpu.mem_bw;
        assert!(
            (t - mem_time).abs() / mem_time < 1e-9,
            "GPU ImgBin is bw-bound"
        );
    }

    #[test]
    fn pnm_beats_cpu_on_bulk_bitwise() {
        // Row-level bitwise ops are Ambit's native territory — the PnM
        // baseline's one large win over the CPU.
        let cpu = Machine::xeon_gold_5118();
        let pnm = Machine::hmc_pnm();
        let p = workload_profile(WorkloadId::BitwiseRow);
        let s = runtime_secs(&cpu, &p, 100.0 * MB) / runtime_secs(&pnm, &p, 100.0 * MB);
        assert!(s > 5.0, "PnM speedup {s}");
        // Threshold compares are bit-serial on PnM: a smaller win.
        let p = workload_profile(WorkloadId::ImgBin);
        let s = runtime_secs(&cpu, &p, 100.0 * MB) / runtime_secs(&pnm, &p, 100.0 * MB);
        assert!(s > 1.0 && s < 20.0, "PnM ImgBin speedup {s}");
    }

    #[test]
    fn energy_scales_with_power() {
        let cpu = Machine::xeon_gold_5118();
        let p = workload_profile(WorkloadId::Vmpc);
        let e = energy_joules(&cpu, &p, 10.0 * MB);
        let t = runtime_secs(&cpu, &p, 10.0 * MB);
        assert!((e - t * cpu.power_w).abs() < 1e-12);
    }

    #[test]
    fn runtime_linear_in_volume() {
        let gpu = Machine::rtx_3080_ti();
        let p = workload_profile(WorkloadId::Salsa20);
        let t1 = runtime_secs(&gpu, &p, 10.0 * MB);
        let t2 = runtime_secs(&gpu, &p, 20.0 * MB);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn estimate_bundles_consistently() {
        let cpu = Machine::xeon_gold_5118();
        let p = workload_profile(WorkloadId::Crc32);
        let e = estimate(&cpu, &p, MB);
        assert!((e.joules - e.secs * cpu.power_w).abs() < 1e-12);
        assert!((e.bytes_per_sec - MB / e.secs).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "negative input volume")]
    fn rejects_negative_volume() {
        let cpu = Machine::xeon_gold_5118();
        let p = workload_profile(WorkloadId::Crc8);
        let _ = runtime_secs(&cpu, &p, -1.0);
    }
}
