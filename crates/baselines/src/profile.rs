//! Per-workload cost descriptors for the baseline machines.
//!
//! Each profile captures how expensive one byte of the workload is on each
//! machine class. The constants are calibrated from public throughput
//! figures for the respective kernels (table-driven CRC ≈ 0.5 GB/s per
//! core, SSE Salsa20 ≈ 4–6 cycles/byte, RC4-class serial ciphers ≈ 13
//! cycles/byte, SIMD threshold ≈ memory speed, …) — see `EXPERIMENTS.md`
//! for the calibration notes and the resulting paper-vs-measured ratios.

use std::fmt;

/// The evaluated workloads (paper Table 4 + the Fig. 9 micro-workloads,
/// plus the §5.6 large-LUT scenarios this reproduction adds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum WorkloadId {
    Crc8,
    Crc16,
    Crc32,
    Salsa20,
    Vmpc,
    ImgBin,
    ColorGrade,
    Add4,
    Add8,
    Mul8,
    Mul16,
    Bc4,
    Bc8,
    MulQ1_7,
    MulQ1_15,
    BitwiseRow,
    /// Direct 12-bit → 8-bit tone map (a 4096-entry LUT partitioned
    /// across subarrays, §5.6).
    Gamma12,
    /// Direct-table 8×8 → 16-bit multiply (a 65 536-entry LUT partitioned
    /// across subarrays, §5.6 — contrast with the nibble-plane `Mul8`).
    MulDirect8,
    /// GEMV-by-LUT over int8 operands: direct signed-product tables
    /// (§5.6-partitioned) with host-side accumulation plus a 12-bit
    /// requantization LUT stage (`pluto-qnn`, `DESIGN.md` §12).
    QnnGemv8,
    /// End-to-end quantized MLP forward pass — GEMV then requantize,
    /// layer by layer — on the same LUT substrate (`pluto-qnn`).
    QnnMlp,
}

impl WorkloadId {
    /// All twenty ids, aliases included, in declaration order.
    pub const ALL: [WorkloadId; 20] = [
        WorkloadId::Crc8,
        WorkloadId::Crc16,
        WorkloadId::Crc32,
        WorkloadId::Salsa20,
        WorkloadId::Vmpc,
        WorkloadId::ImgBin,
        WorkloadId::ColorGrade,
        WorkloadId::Add4,
        WorkloadId::Add8,
        WorkloadId::Mul8,
        WorkloadId::Mul16,
        WorkloadId::Bc4,
        WorkloadId::Bc8,
        WorkloadId::MulQ1_7,
        WorkloadId::MulQ1_15,
        WorkloadId::BitwiseRow,
        WorkloadId::Gamma12,
        WorkloadId::MulDirect8,
        WorkloadId::QnnGemv8,
        WorkloadId::QnnMlp,
    ];

    /// The eighteen distinct workloads after alias resolution — paper
    /// Table 4 order followed by the §5.6 large-LUT scenarios and the
    /// §12 inference scenarios (the order `pluto_workloads::registry()`
    /// uses).
    pub const CANONICAL: [WorkloadId; 18] = [
        WorkloadId::Crc8,
        WorkloadId::Crc16,
        WorkloadId::Crc32,
        WorkloadId::Salsa20,
        WorkloadId::Vmpc,
        WorkloadId::ImgBin,
        WorkloadId::ColorGrade,
        WorkloadId::Add4,
        WorkloadId::Add8,
        WorkloadId::Mul8,
        WorkloadId::Mul16,
        WorkloadId::Bc4,
        WorkloadId::Bc8,
        WorkloadId::BitwiseRow,
        WorkloadId::Gamma12,
        WorkloadId::MulDirect8,
        WorkloadId::QnnGemv8,
        WorkloadId::QnnMlp,
    ];

    /// Resolves the aliased ids to the workload whose mapping and profile
    /// they share: the paper's Fig. 9 "MUL8"/"MUL16" points *are* the Q1.7
    /// and Q1.15 fixed-point multiplies of Fig. 12b, so `MulQ1_7` aliases
    /// `Mul8` and `MulQ1_15` aliases `Mul16`. Every other id is its own
    /// canonical form. Code that previously pattern-matched the pairs
    /// (`Mul8 | MulQ1_7 => …`) should match on `id.canonical()` instead.
    pub const fn canonical(self) -> WorkloadId {
        match self {
            WorkloadId::MulQ1_7 => WorkloadId::Mul8,
            WorkloadId::MulQ1_15 => WorkloadId::Mul16,
            other => other,
        }
    }

    /// Whether this id is an alias of another workload (see
    /// [`WorkloadId::canonical`]).
    pub const fn is_alias(self) -> bool {
        matches!(self, WorkloadId::MulQ1_7 | WorkloadId::MulQ1_15)
    }

    /// The paper's display label (what [`fmt::Display`] prints).
    pub const fn label(self) -> &'static str {
        match self {
            WorkloadId::Crc8 => "CRC-8",
            WorkloadId::Crc16 => "CRC-16",
            WorkloadId::Crc32 => "CRC-32",
            WorkloadId::Salsa20 => "Salsa20",
            WorkloadId::Vmpc => "VMPC",
            WorkloadId::ImgBin => "ImgBin",
            WorkloadId::ColorGrade => "ColorGrade",
            WorkloadId::Add4 => "ADD4",
            WorkloadId::Add8 => "ADD8",
            WorkloadId::Mul8 => "MUL8",
            WorkloadId::Mul16 => "MUL16",
            WorkloadId::Bc4 => "BC-4",
            WorkloadId::Bc8 => "BC-8",
            WorkloadId::MulQ1_7 => "MUL-Q1.7",
            WorkloadId::MulQ1_15 => "MUL-Q1.15",
            WorkloadId::BitwiseRow => "Bitwise",
            WorkloadId::Gamma12 => "Gamma12",
            WorkloadId::MulDirect8 => "MulDirect8",
            WorkloadId::QnnGemv8 => "QNN-GEMV8",
            WorkloadId::QnnMlp => "QNN-MLP",
        }
    }

    /// The Fig. 7 / Fig. 10 workload set.
    pub const FIG7: [WorkloadId; 7] = [
        WorkloadId::Crc8,
        WorkloadId::Crc16,
        WorkloadId::Crc32,
        WorkloadId::Salsa20,
        WorkloadId::Vmpc,
        WorkloadId::ImgBin,
        WorkloadId::ColorGrade,
    ];

    /// The Fig. 9 (FPGA comparison) workload set.
    pub const FIG9: [WorkloadId; 10] = [
        WorkloadId::Add4,
        WorkloadId::Add8,
        WorkloadId::Mul8,
        WorkloadId::Mul16,
        WorkloadId::Bc4,
        WorkloadId::Bc8,
        WorkloadId::Crc8,
        WorkloadId::Crc16,
        WorkloadId::Crc32,
        WorkloadId::ImgBin,
    ];
}

impl fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Cost descriptors of one workload across the machine classes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Profile {
    /// Which workload.
    pub id: WorkloadId,
    /// Single-core CPU cycles per byte (SSE-optimized kernel).
    pub cpu_cycles_per_byte: f64,
    /// Per-CUDA-core cycles per byte of the GPU kernel.
    pub gpu_cycles_per_byte: f64,
    /// Bytes processed per cycle by one FPGA pipeline lane.
    pub fpga_bytes_per_cycle: f64,
    /// Effective PnM PE cycles per byte (bulk in-memory ops folded in).
    pub pnm_cycles_per_byte: f64,
    /// Fraction of the work that is a serial reduction (Amdahl term; the
    /// CRC workloads' bottleneck, §8.2).
    pub serial_fraction: f64,
    /// Main-memory traffic per input byte (read + write).
    pub mem_traffic_factor: f64,
}

/// The calibrated profile of each workload.
pub fn workload_profile(id: WorkloadId) -> Profile {
    use WorkloadId::*;
    // CPU figures model the paper's per-element kernels (scalar table
    // walks and branches dominate; SSE helps only the trivially vectorized
    // cases). PnM figures charge Ambit/DRISA *bit-serial* costs for
    // operations the substrate does not support natively (threshold
    // compares, LUT gathers, wide adds) and logic-layer-core costs for
    // irregular work — the paper's PnM baseline has no LUT-query primitive.
    let (cpu, gpu, fpga, pnm, serial, mem) = match id.canonical() {
        // Table-driven CRC: serial dependency chain per packet; the final
        // packet-merge reduction is serial (§8.2: "bottlenecked by a serial
        // reduction step"). PnM runs the table walk on its 1.25 GHz core.
        Crc8 | Crc16 | Crc32 => (7.0, 2.0, 1.0, 40.0, 0.02, 2.0),
        // Salsa20 ≈ 6 cycles/byte/core; PnM needs long bit-serial add
        // sequences for the 32-bit modular additions.
        Salsa20 => (6.0, 1.5, 0.5, 48.0, 0.0, 2.0),
        // VMPC is RC4-class: serial, permutation-chasing, cache-hostile;
        // the PnM core chases the same dependent loads.
        Vmpc => (14.0, 4.0, 0.25, 56.0, 0.0, 2.0),
        // Per-pixel threshold: branchy scalar loop on the CPU; bit-serial
        // magnitude comparison (≈ 25 row ops per bit-plane set) on PnM.
        ImgBin => (3.5, 0.25, 8.0, 15.0, 0.0, 2.0),
        // Per-channel 8-bit grading LUT: gather-limited on CPUs; gathers
        // are unsupported in-memory, so PnM falls back to its core.
        ColorGrade => (6.0, 0.5, 2.0, 40.0, 0.0, 2.0),
        // Narrow adds: Ambit bit-serial addition ≈ 5 row ops per bit.
        Add4 | Add8 => (1.5, 0.15, 8.0, 4.0, 0.0, 3.0),
        // Bit-serial multiplication costs a quadratic number of row ops.
        Mul8 => (2.0, 0.2, 4.0, 24.0, 0.0, 3.0),
        Mul16 => (3.0, 0.25, 2.0, 90.0, 0.0, 3.0),
        // `canonical()` folded the alias ids into Mul8/Mul16 above.
        MulQ1_7 | MulQ1_15 => unreachable!("aliases resolve via canonical()"),
        // Popcount: scalar LUT walk on CPU; bit-serial tree on PnM.
        Bc4 => (2.5, 0.2, 8.0, 6.0, 0.0, 2.0),
        Bc8 => (2.5, 0.2, 8.0, 10.0, 0.0, 2.0),
        // Native Ambit territory: the one workload PnM does at row speed.
        BitwiseRow => (1.0, 0.15, 8.0, 0.4, 0.0, 3.0),
        // 12-bit tone map: a 4 KiB gather table that misses L1 (cf.
        // ColorGrade's 256 B curve); gathers are unsupported in-memory so
        // PnM falls back to its core.
        Gamma12 => (7.0, 0.6, 2.0, 44.0, 0.0, 2.0),
        // Direct-table multiply: the *CPU* computes it with one `imul`
        // (same as Mul8); only LUT-based substrates pay the 128 KiB
        // table, which is the §5.6 capacity–computation tradeoff the
        // scenario exists to expose.
        MulDirect8 => (2.0, 0.2, 4.0, 24.0, 0.0, 3.0),
        // int8 GEMV: one fused multiply-add per MAC on CPU/GPU; the PnM
        // core pays the same bit-serial multiply as Mul8 plus the
        // accumulate; LUT substrates pay the 128 KiB product table.
        QnnGemv8 => (2.0, 0.2, 4.0, 26.0, 0.0, 2.0),
        // Whole MLP forward pass: GEMV traffic plus per-layer
        // requantization; a small serial fraction models the layer
        // barrier (activations must finish before the next layer).
        QnnMlp => (3.0, 0.3, 2.0, 30.0, 0.01, 2.0),
    };
    Profile {
        id,
        cpu_cycles_per_byte: cpu,
        gpu_cycles_per_byte: gpu,
        fpga_bytes_per_cycle: fpga,
        pnm_cycles_per_byte: pnm,
        serial_fraction: serial,
        mem_traffic_factor: mem,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_has_a_profile() {
        for id in WorkloadId::ALL {
            let p = workload_profile(id);
            assert!(p.cpu_cycles_per_byte > 0.0, "{id}");
            assert!(p.mem_traffic_factor >= 1.0, "{id}");
            assert!((0.0..1.0).contains(&p.serial_fraction), "{id}");
        }
    }

    #[test]
    fn aliases_resolve_to_their_canonical_workload() {
        assert_eq!(WorkloadId::MulQ1_7.canonical(), WorkloadId::Mul8);
        assert_eq!(WorkloadId::MulQ1_15.canonical(), WorkloadId::Mul16);
        assert!(WorkloadId::MulQ1_7.is_alias());
        assert!(WorkloadId::MulQ1_15.is_alias());
        for id in WorkloadId::CANONICAL {
            assert_eq!(id.canonical(), id, "{id} is canonical");
            assert!(!id.is_alias(), "{id}");
        }
        // Alias pairs share one profile (modulo the embedded id).
        let share = |a: WorkloadId, b: WorkloadId| {
            let (pa, pb) = (workload_profile(a), workload_profile(b));
            pa.cpu_cycles_per_byte == pb.cpu_cycles_per_byte
                && pa.pnm_cycles_per_byte == pb.pnm_cycles_per_byte
        };
        assert!(share(WorkloadId::Mul8, WorkloadId::MulQ1_7));
        assert!(share(WorkloadId::Mul16, WorkloadId::MulQ1_15));
        // CANONICAL is exactly ALL minus the aliases.
        assert_eq!(
            WorkloadId::CANONICAL.to_vec(),
            WorkloadId::ALL
                .into_iter()
                .filter(|id| !id.is_alias())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn vmpc_is_the_most_cpu_hostile_cipher() {
        // §8.2.1: VMPC is "very memory-intensive" and serial on CPUs.
        let vmpc = workload_profile(WorkloadId::Vmpc);
        let salsa = workload_profile(WorkloadId::Salsa20);
        assert!(vmpc.cpu_cycles_per_byte > salsa.cpu_cycles_per_byte);
    }

    #[test]
    fn only_crc_has_serial_reduction() {
        for id in WorkloadId::FIG7 {
            let p = workload_profile(id);
            let is_crc = matches!(id, WorkloadId::Crc8 | WorkloadId::Crc16 | WorkloadId::Crc32);
            assert_eq!(p.serial_fraction > 0.0, is_crc, "{id}");
        }
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(WorkloadId::Crc32.to_string(), "CRC-32");
        assert_eq!(WorkloadId::ColorGrade.to_string(), "ColorGrade");
        assert_eq!(WorkloadId::FIG7.len(), 7);
        assert_eq!(WorkloadId::FIG9.len(), 10);
    }
}
