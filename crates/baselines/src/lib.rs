//! # pluto-baselines — baseline machine models for the pLUTo evaluation
//!
//! The paper compares pLUTo against five baselines (§7): a real Intel Xeon
//! Gold 5118 CPU, a real NVIDIA RTX 3080 Ti GPU (P100 for the Table 7 QNN
//! study), a simulated HMC-based Processing-near-Memory device with Ambit
//! bitwise + DRISA shift support, a Xilinx ZCU102 FPGA evaluated through
//! HLS synthesis, and four prior Processing-using-Memory architectures
//! (Ambit, SIMDRAM, LAcc, DRISA; Table 6).
//!
//! We do not have the authors' hardware, so these are analytic *roofline*
//! models: each machine is described by its published compute and
//! memory-bandwidth capabilities, and each workload by per-machine cost
//! descriptors (cycles per byte, row-level operation counts). The models
//! preserve the *shape* of the paper's comparisons — who wins, by what
//! order of magnitude, and where crossovers fall — which is what the
//! reproduction validates (see `DESIGN.md` §1 and `EXPERIMENTS.md`).
//!
//! * [`machine`] — machine specs (frequency, lanes, bandwidth, power, area)
//!   with presets for every evaluated device.
//! * [`profile`] — per-workload cost descriptors for each machine class.
//! * [`estimate`] — runtime/energy estimation from spec × profile.
//! * [`pum`] — prior-PuM op-level models (Ambit, SIMDRAM, LAcc, DRISA) for
//!   Table 6 and the Fig. 12b multiplication scaling study.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod estimate;
pub mod machine;
pub mod profile;
pub mod pum;

pub use estimate::{energy_joules, runtime_secs, Estimate};
pub use machine::{Machine, MachineKind};
pub use profile::{workload_profile, Profile, WorkloadId};
pub use pum::{PumArch, PumOp};
