//! Machine specifications for the evaluated baselines.
//!
//! Each spec carries the published headline capabilities of the device the
//! paper used (§7.1, Table 3). The roofline estimator in
//! [`crate::estimate`] combines these with per-workload cost descriptors.

use std::fmt;

/// Which baseline device class a spec describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MachineKind {
    /// General-purpose out-of-order CPU.
    Cpu,
    /// Discrete GPU.
    Gpu,
    /// FPGA running an HLS-generated streaming pipeline.
    Fpga,
    /// Processing-near-Memory: cores in the logic layer of 3D-stacked DRAM.
    Pnm,
}

impl fmt::Display for MachineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineKind::Cpu => write!(f, "CPU"),
            MachineKind::Gpu => write!(f, "GPU"),
            MachineKind::Fpga => write!(f, "FPGA"),
            MachineKind::Pnm => write!(f, "PnM"),
        }
    }
}

/// Analytic description of one baseline machine.
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    /// Human-readable device name.
    pub name: &'static str,
    /// Device class.
    pub kind: MachineKind,
    /// Core/PE clock in Hz.
    pub freq_hz: f64,
    /// Number of independent execution lanes the estimator may scale
    /// across (cores × SIMD lanes for CPUs, CUDA cores for GPUs, pipeline
    /// replicas for FPGAs, logic-layer PEs for PnM).
    pub lanes: f64,
    /// Sustained main-memory bandwidth in bytes/s.
    pub mem_bw: f64,
    /// Board/package power while busy, in watts.
    pub power_w: f64,
    /// Die area in mm² (used for performance-per-area, Fig. 8).
    pub area_mm2: f64,
}

impl Machine {
    /// Intel Xeon Gold 5118 (§7.1 \[103\]): 12 cores @ 2.3 GHz, DDR4-2400
    /// single-channel in the paper's configuration (19.2 GB/s), 105 W TDP,
    /// ≈ 325 mm² (Skylake-SP LCC die).
    ///
    /// The paper's workload kernels are single-threaded SSE loops (the
    /// per-workload profiles encode their cycles-per-byte), so `lanes`
    /// counts SIMD bytes per cycle of one core; the cycles-per-byte figures
    /// already fold in SIMD width.
    pub fn xeon_gold_5118() -> Self {
        Machine {
            name: "Intel Xeon Gold 5118",
            kind: MachineKind::Cpu,
            freq_hz: 2.3e9,
            lanes: 1.0,
            mem_bw: 19.2e9,
            power_w: 105.0,
            area_mm2: 325.0,
        }
    }

    /// NVIDIA GeForce RTX 3080 Ti (§7.1 \[104\]): 10240 CUDA cores @
    /// 1.67 GHz, 912 GB/s GDDR6X, 350 W, 628 mm² (GA102).
    pub fn rtx_3080_ti() -> Self {
        Machine {
            name: "NVIDIA RTX 3080 Ti",
            kind: MachineKind::Gpu,
            freq_hz: 1.67e9,
            lanes: 10240.0,
            mem_bw: 912e9,
            power_w: 350.0,
            area_mm2: 628.0,
        }
    }

    /// NVIDIA Tesla P100 (§9 \[141\]): 3584 CUDA cores @ 1.33 GHz, 732 GB/s
    /// HBM2, 300 W, 610 mm² — the GPU used for the Table 7 QNN study.
    pub fn tesla_p100() -> Self {
        Machine {
            name: "NVIDIA Tesla P100",
            kind: MachineKind::Gpu,
            freq_hz: 1.33e9,
            lanes: 3584.0,
            mem_bw: 732e9,
            power_w: 300.0,
            area_mm2: 610.0,
        }
    }

    /// Xilinx Zynq UltraScale+ ZCU102 (§7.1 \[105\]): HLS pipelines at
    /// 300 MHz, DDR4 at 19.2 GB/s, ≈ 25 W board power. `lanes` models the
    /// replicated streaming pipelines HLS instantiates.
    pub fn zcu102() -> Self {
        Machine {
            name: "Xilinx ZCU102",
            kind: MachineKind::Fpga,
            freq_hz: 300e6,
            lanes: 16.0,
            mem_bw: 19.2e9,
            power_w: 25.0,
            area_mm2: 600.0,
        }
    }

    /// The paper's PnM baseline (Table 3): HMC model with bulk-bitwise
    /// (Ambit) and bit-shift (DRISA) support plus an on-die core at
    /// 1.25 GHz with 10 W TDP; internal bandwidth 320 GB/s (HMC 2.1
    /// aggregate link bandwidth).
    pub fn hmc_pnm() -> Self {
        Machine {
            name: "HMC PnM (Ambit + DRISA + core)",
            kind: MachineKind::Pnm,
            freq_hz: 1.25e9,
            lanes: 32.0, // one PE per vault
            mem_bw: 320e9,
            power_w: 10.0,
            area_mm2: 70.0, // logic-layer budget comparable to a DRAM die
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_positive_fields() {
        for m in [
            Machine::xeon_gold_5118(),
            Machine::rtx_3080_ti(),
            Machine::tesla_p100(),
            Machine::zcu102(),
            Machine::hmc_pnm(),
        ] {
            assert!(m.freq_hz > 0.0 && m.lanes > 0.0 && m.mem_bw > 0.0);
            assert!(m.power_w > 0.0 && m.area_mm2 > 0.0, "{}", m.name);
        }
    }

    #[test]
    fn gpu_bandwidth_dwarfs_cpu() {
        assert!(Machine::rtx_3080_ti().mem_bw / Machine::xeon_gold_5118().mem_bw > 40.0);
    }

    #[test]
    fn kinds_display() {
        assert_eq!(MachineKind::Pnm.to_string(), "PnM");
        assert_eq!(Machine::zcu102().kind, MachineKind::Fpga);
    }
}
