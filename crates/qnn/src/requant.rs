//! Per-layer requantization as a direct LUT — the Gamma12 tone-map
//! machinery generalized (`DESIGN.md` §12).
//!
//! After a GEMV the host holds wide signed accumulators; the next layer
//! wants narrow signed activations. A [`Requant`] stage bakes the whole
//! `saturate → arithmetic shift → clamp` transfer into one direct table
//! (`in_width`-bit index, `out_width`-bit entries) so the step costs a
//! single bulk query stream, exactly like the 4096-entry gamma table.
//! The host first saturates accumulators into the table's signed input
//! window — that saturation is part of the stage's defined semantics
//! and the host oracle ([`Requant::apply_host`]) performs the identical
//! arithmetic, keeping both paths bit-for-bit equal.

use crate::gemv::{signed_max, signed_min, to_field, to_signed};
use pluto_core::{Lut, PlutoError, PlutoMachine};

/// A requantization stage: clamp to the signed `in_width`-bit window,
/// arithmetic-shift right by `shift` (the power-of-two rescale), clamp
/// to the signed `out_width`-bit range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Requant {
    /// LUT index width: the signed window accumulators saturate into.
    pub in_width: u32,
    /// Arithmetic right shift applied after the input clamp.
    pub shift: u32,
    /// Output activation width (second clamp range).
    pub out_width: u32,
}

impl Requant {
    /// Builds a stage; widths must fit the LUT shape limits and the
    /// shift must leave at least one output bit of signal.
    ///
    /// # Panics
    /// On a shape that cannot form a valid LUT.
    #[must_use]
    pub fn new(in_width: u32, shift: u32, out_width: u32) -> Self {
        assert!((2..=20).contains(&in_width), "in_width must be 2..=20");
        assert!((2..=16).contains(&out_width), "out_width must be 2..=16");
        assert!(shift < in_width, "shift must leave signal bits");
        Requant {
            in_width,
            shift,
            out_width,
        }
    }

    /// The host oracle, also the exact arithmetic baked into
    /// [`Requant::lut`]: `(acc.clamp(in range) >> shift).clamp(out range)`
    /// with arithmetic (sign-preserving) shift.
    #[must_use]
    pub fn apply_host(&self, acc: i32) -> i32 {
        let clamped = acc.clamp(signed_min(self.in_width), signed_max(self.in_width));
        (clamped >> self.shift).clamp(signed_min(self.out_width), signed_max(self.out_width))
    }

    /// Saturates a raw accumulator into the LUT's signed input window
    /// and encodes it as a table index.
    #[must_use]
    pub fn index_of(&self, acc: i32) -> u64 {
        to_field(
            acc.clamp(signed_min(self.in_width), signed_max(self.in_width)),
            self.in_width,
        )
    }

    /// The direct requantization table: `2^in_width` entries of
    /// `out_width`-bit two's-complement activations. At the default
    /// 12-bit window this is a 4096-entry table — the same §5.6 store
    /// shape as Gamma12 (8 segments on the measurement geometry).
    ///
    /// # Errors
    /// Propagates [`Lut::from_fn`] shape errors.
    pub fn lut(&self) -> Result<Lut, PlutoError> {
        let stage = *self;
        Lut::from_fn(
            format!(
                "requant{}s{}c{}",
                stage.in_width, stage.shift, stage.out_width
            ),
            stage.in_width,
            stage.out_width,
            move |u| {
                to_field(
                    stage.apply_host(to_signed(u, stage.in_width)),
                    stage.out_width,
                )
            },
        )
    }

    /// Requantizes a batch of raw accumulators through the LUT on a
    /// machine: host-saturate to the input window, one bulk query
    /// stream, decode signed activations.
    ///
    /// # Errors
    /// Propagates machine errors.
    pub fn apply_on(&self, m: &mut PlutoMachine, accs: &[i32]) -> Result<Vec<i32>, PlutoError> {
        let lut = self.lut()?;
        let indices: Vec<u64> = accs.iter().map(|&a| self.index_of(a)).collect();
        Ok(m.apply(&lut, &indices)?
            .values
            .into_iter()
            .map(|v| to_signed(v, self.out_width))
            .collect())
    }
}

impl std::fmt::Display for Requant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "requant({}→>>{}→{})",
            self.in_width, self.shift, self.out_width
        )
    }
}
