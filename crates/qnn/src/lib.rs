//! # pluto-qnn — LUT-based quantized inference (paper §9, `DESIGN.md` §12)
//!
//! The paper evaluates 1-bit and 4-bit quantized LeNet-5 inference on
//! MNIST as a proof of concept for pLUTo's low-bit-width strengths.
//! This crate reproduces that study and extends it into a layered
//! inference pipeline running on the full store/cluster/serve stack:
//!
//! * [`tensor`] — a minimal integer tensor.
//! * [`mnist`] — a deterministic synthetic MNIST-like digit generator
//!   (stroke templates + seeded noise; see `DESIGN.md` §1: Table 7 measures
//!   inference *time and energy*, not accuracy, so synthetic digits
//!   exercise the identical compute path).
//! * [`lenet`] — the LeNet-5 topology with 1-bit (binarised,
//!   XNOR-popcount) and 4-bit quantised arithmetic.
//! * [`gemv`] — the GEMV-by-LUT stage: [`gemv::QuantLinear`] lowers
//!   int8 matrix–vector products onto LUT queries, either a direct
//!   signed-product table (65 536 entries at 8 bits, partitioned across
//!   128 §5.6 segments) or the nibble-plane `mul4` contrast — the
//!   LoCalut capacity–computation axis — with host (PnM-core)
//!   accumulation.
//! * [`requant`] — per-layer requantization as its own direct LUT
//!   (saturate/shift/clamp baked into the table, the Gamma12 machinery
//!   generalized).
//! * [`model`] — the [`model::QuantModel`]/[`model::Layer`] graph
//!   composing those stages into an end-to-end MLP forward pass,
//!   bit-identical to a host `i32` oracle, plus the layer-shape view
//!   that Table 7's query counts derive from.
//! * [`pluto_exec`] — execution plumbing: the original binary
//!   dot-product kernel, the [`pluto_exec::QnnGemvWorkload`] /
//!   [`pluto_exec::QnnMlpWorkload`] registry scenarios, and the
//!   cluster drivers that shard a layer by output-neuron tile.
//! * [`table7`] — the paper's published Table 7 numbers next to this
//!   reproduction's modeled estimates.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod gemv;
pub mod lenet;
pub mod mnist;
pub mod model;
pub mod pluto_exec;
pub mod requant;
pub mod table7;
pub mod tensor;

pub use gemv::{GemvPath, QuantLinear};
pub use lenet::{LeNet5, Precision};
pub use mnist::SyntheticMnist;
pub use model::{Layer, QuantModel};
pub use requant::Requant;
pub use table7::{published, InferenceCost, Platform};
