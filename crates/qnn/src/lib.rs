//! # pluto-qnn — quantized LeNet-5 case study (paper §9, Table 7)
//!
//! The paper evaluates 1-bit and 4-bit quantized LeNet-5 inference on
//! MNIST as a proof of concept for pLUTo's low-bit-width strengths. This
//! crate reproduces the study end to end:
//!
//! * [`tensor`] — a minimal integer tensor.
//! * [`mnist`] — a deterministic synthetic MNIST-like digit generator
//!   (stroke templates + seeded noise; see `DESIGN.md` §1: Table 7 measures
//!   inference *time and energy*, not accuracy, so synthetic digits
//!   exercise the identical compute path).
//! * [`lenet`] — the LeNet-5 topology with 1-bit (binarised,
//!   XNOR-popcount) and 4-bit quantised arithmetic.
//! * [`pluto_exec`] — the pLUTo mapping of the binary dot-product kernel
//!   (bit-plane XNOR LUT queries + BC-8 popcount fold), validated against
//!   the reference layer, plus the whole-network operation counting used
//!   for the Table 7 cost model.
//! * [`table7`] — the paper's published Table 7 numbers next to this
//!   reproduction's modeled estimates.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod lenet;
pub mod mnist;
pub mod pluto_exec;
pub mod table7;
pub mod tensor;

pub use lenet::{LeNet5, Precision};
pub use mnist::SyntheticMnist;
pub use table7::{published, InferenceCost, Platform};
