//! The layer graph: composing GEMV-by-LUT and requantization stages
//! into an end-to-end quantized forward pass (`DESIGN.md` §12).
//!
//! A [`QuantModel`] is an ordered list of [`Layer`]s, each a
//! [`QuantLinear`] GEMV followed by an optional [`Requant`] stage (the
//! logits layer keeps raw accumulators). The same graph runs four ways,
//! all bit-identical to the host `i32` oracle:
//!
//! - [`QuantModel::forward_reference`] — the pure-host oracle;
//! - [`QuantModel::forward_on`] — serially on one [`PlutoMachine`],
//!   every multiply and requantization a bulk LUT query;
//! - sharded across a [`pluto_core::cluster::Cluster`] by output-neuron
//!   tile ([`crate::pluto_exec::mlp_cluster`]);
//! - streamed through [`pluto_core::serve`] as per-sample single-LUT
//!   queries ([`QuantModel::serve_infer`]).
//!
//! [`QuantModel::mnist_mlp`] builds the MNIST-sized reference model
//! (196→32→16→10 over 2×2-pooled [`crate::mnist::SyntheticMnist`]
//! digits), and [`lenet_layer_shapes`] projects the PR-3-era
//! [`LeNet5`] network onto the same per-layer shape view so Table 7's
//! query counts derive from a layer graph instead of hand-kept
//! constants.

use crate::gemv::{smul_lut, to_field, to_signed, GemvPath, QuantLinear};
use crate::lenet::LeNet5;
use crate::mnist::SIDE;
use crate::requant::Requant;
use crate::tensor::Tensor;
use pluto_core::serve::{QuerySpec, Server};
use pluto_core::session::ExecConfig;
use pluto_core::{PlutoError, PlutoMachine};
use sim_support::{Rng, SeedableRng, StdRng};
use std::sync::Arc;

/// One pipeline layer: a GEMV stage plus an optional requantization
/// stage squeezing accumulators back to the next layer's operand width.
#[derive(Debug, Clone)]
pub struct Layer {
    /// The quantized matrix–vector stage (shared with cluster shards).
    pub linear: Arc<QuantLinear>,
    /// The narrowing stage; `None` keeps raw accumulators (logits).
    pub requant: Option<Requant>,
}

impl Layer {
    /// Host `i32` oracle through both stages.
    #[must_use]
    pub fn forward_reference(&self, x: &[i32]) -> Vec<i32> {
        let accs = self.linear.forward_reference(x);
        match &self.requant {
            Some(r) => accs.iter().map(|&a| r.apply_host(a)).collect(),
            None => accs,
        }
    }

    /// Both stages on a machine: GEMV queries, host accumulation, one
    /// requantization query stream.
    ///
    /// # Errors
    /// Propagates machine errors.
    pub fn forward_on(
        &self,
        m: &mut PlutoMachine,
        x: &[i32],
        path: GemvPath,
    ) -> Result<Vec<i32>, PlutoError> {
        let accs = self.linear.forward_on(m, x, path)?;
        match &self.requant {
            Some(r) => r.apply_on(m, &accs),
            None => Ok(accs),
        }
    }

    /// Bulk LUT lookups one forward pass of this layer issues.
    #[must_use]
    pub fn lut_lookups(&self, path: GemvPath) -> u64 {
        let requant = if self.requant.is_some() {
            self.linear.out_features() as u64
        } else {
            0
        };
        self.linear.lut_lookups(path) + requant
    }
}

/// An end-to-end quantized model: layers applied in order.
#[derive(Debug, Clone)]
pub struct QuantModel {
    /// The pipeline, input side first.
    pub layers: Vec<Layer>,
}

impl QuantModel {
    /// The MNIST-sized reference MLP: 196→32→16→10 at 8-bit operands,
    /// weights seeded in `-8..=7`, hidden layers requantized through a
    /// 12-bit window (`>> 2`, clamp to int8), raw logits out. Input is
    /// [`QuantModel::input_from_image`]'s pooled-and-quantized vector.
    #[must_use]
    pub fn mnist_mlp(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let hidden = Requant::new(12, 2, 8);
        let mut layer = |name: &str, out, inp, requant| Layer {
            linear: Arc::new(QuantLinear::seeded(name, out, inp, 8, -8..=7, &mut rng)),
            requant,
        };
        QuantModel {
            layers: vec![
                layer("mlp-fc1", 32, POOLED * POOLED, Some(hidden)),
                layer("mlp-fc2", 16, 32, Some(hidden)),
                layer("mlp-logits", 10, 16, None),
            ],
        }
    }

    /// Lowers a 28×28 synthetic digit to the model's input vector: 2×2
    /// average pool to 14×14, then the LeNet-style `(v − 128) / 16`
    /// quantization clamped to the signed 8-bit operand range.
    ///
    /// # Panics
    /// If the image is not `[1, 28, 28]`.
    #[must_use]
    pub fn input_from_image(img: &Tensor) -> Vec<i32> {
        assert_eq!(img.shape(), [1, SIDE, SIDE], "expected a 1x28x28 image");
        let mut x = Vec::with_capacity(POOLED * POOLED);
        for py in 0..POOLED {
            for px in 0..POOLED {
                let sum = img.at3(0, 2 * py, 2 * px)
                    + img.at3(0, 2 * py, 2 * px + 1)
                    + img.at3(0, 2 * py + 1, 2 * px)
                    + img.at3(0, 2 * py + 1, 2 * px + 1);
                x.push(((sum / 4 - 128) / 16).clamp(-8, 7));
            }
        }
        x
    }

    /// Host `i32` oracle for the whole pipeline.
    #[must_use]
    pub fn forward_reference(&self, x: &[i32]) -> Vec<i32> {
        self.layers
            .iter()
            .fold(x.to_vec(), |act, layer| layer.forward_reference(&act))
    }

    /// Full forward pass on one machine, layer by layer. LUT residency
    /// is content-keyed, so every layer at the same operand width shares
    /// one product store and the hidden layers share one requantization
    /// store.
    ///
    /// # Errors
    /// Propagates machine errors.
    pub fn forward_on(
        &self,
        m: &mut PlutoMachine,
        x: &[i32],
        path: GemvPath,
    ) -> Result<Vec<i32>, PlutoError> {
        let mut act = x.to_vec();
        for layer in &self.layers {
            act = layer.forward_on(m, &act, path)?;
        }
        Ok(act)
    }

    /// Pins every LUT the pipeline will query co-resident on the machine
    /// before any activation streams through
    /// ([`PlutoMachine::preload`]); returns the total subarrays claimed.
    ///
    /// # Errors
    /// Propagates machine errors.
    pub fn preload_on(&self, m: &mut PlutoMachine, path: GemvPath) -> Result<u16, PlutoError> {
        let mut claimed = 0u16;
        for layer in &self.layers {
            let mut luts = Vec::new();
            match path {
                GemvPath::Direct => luts.push(smul_lut(layer.linear.width())?),
                GemvPath::NibblePlane => luts.push(pluto_core::lut::catalog::mul(4)?),
            }
            if let Some(r) = &layer.requant {
                luts.push(r.lut()?);
            }
            for lut in luts {
                let resident = m.resident_luts();
                let claim = m.preload(&lut)?;
                if m.resident_luts() > resident {
                    claimed += claim;
                }
            }
        }
        Ok(claimed)
    }

    /// Bulk LUT lookups one full forward pass issues on `path`.
    #[must_use]
    pub fn lut_lookups(&self, path: GemvPath) -> u64 {
        self.layers.iter().map(|l| l.lut_lookups(path)).sum()
    }

    /// Per-layer shape view of the pipeline.
    #[must_use]
    pub fn layer_shapes(&self) -> Vec<LayerShape> {
        self.layers
            .iter()
            .map(|l| LayerShape {
                name: l.linear.name().to_string(),
                out_features: l.linear.out_features(),
                in_features: l.linear.in_features(),
            })
            .collect()
    }

    /// Streams one sample's inference through a serve [`Server`] as
    /// single-LUT queries (the direct path only — the nibble-plane
    /// lowering is a multi-query program, not a servable single query).
    /// Per layer: one product-stream query against the shared signed
    /// multiply table (operand fields pre-merged host-side, exactly the
    /// `apply2` packing), host PnM-core accumulation, then one
    /// requantization query.
    ///
    /// # Errors
    /// Propagates serve/machine errors.
    pub fn serve_infer(
        &self,
        server: &mut Server,
        config: &ExecConfig,
        x: &[i32],
    ) -> Result<Vec<i32>, PlutoError> {
        let mut act = x.to_vec();
        for layer in &self.layers {
            let w = layer.linear.width();
            let lut = Arc::new(smul_lut(w)?);
            let xf: Vec<u64> = act.iter().map(|&v| to_field(v, w)).collect();
            let mut merged = Vec::with_capacity(layer.linear.mac_count() as usize);
            for o in 0..layer.linear.out_features() {
                for (wgt, &xv) in layer.linear.row(o).iter().zip(&xf) {
                    merged.push((to_field(*wgt, w) << w) | xv);
                }
            }
            let ticket = server.enqueue(QuerySpec {
                config: config.clone(),
                lut,
                inputs: merged,
            });
            server.flush();
            let reply = ticket.wait()?;
            let accs: Vec<i32> = reply
                .values
                .chunks(layer.linear.in_features())
                .map(|c| {
                    c.iter()
                        .map(|&p| i64::from(to_signed(p, 2 * w)))
                        .sum::<i64>() as i32
                })
                .collect();
            act = match &layer.requant {
                Some(r) => {
                    let indices: Vec<u64> = accs.iter().map(|&a| r.index_of(a)).collect();
                    let ticket = server.enqueue(QuerySpec {
                        config: config.clone(),
                        lut: Arc::new(r.lut()?),
                        inputs: indices,
                    });
                    server.flush();
                    ticket
                        .wait()?
                        .values
                        .into_iter()
                        .map(|v| to_signed(v, r.out_width))
                        .collect()
                }
                None => accs,
            };
        }
        Ok(act)
    }
}

/// The pooled input side length of [`QuantModel::mnist_mlp`].
pub const POOLED: usize = SIDE / 2;

/// One layer's GEMV shape: `out_features × in_features` MACs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerShape {
    /// Layer name (reporting label).
    pub name: String,
    /// Output values the layer produces (neurons × spatial positions).
    pub out_features: usize,
    /// MACs per output value (receptive field / input width).
    pub in_features: usize,
}

impl LayerShape {
    /// Multiply–accumulate count of the layer.
    #[must_use]
    pub fn mac_count(&self) -> u64 {
        (self.out_features * self.in_features) as u64
    }
}

/// Projects a [`LeNet5`] network onto the per-layer shape view: each
/// convolution becomes the GEMV of its im2col lowering (one output
/// value per channel × position, one MAC per receptive-field tap), each
/// fully connected layer maps directly. Spatial dimensions are derived
/// from the network's own kernel sizes — nothing is hand-maintained —
/// so the Table 7 query counts follow the graph.
#[must_use]
pub fn lenet_layer_shapes(net: &LeNet5) -> Vec<LayerShape> {
    let side1 = SIDE - net.conv1.k + 1;
    let pooled1 = side1 / 2;
    let side2 = pooled1 - net.conv2.k + 1;
    let conv = |name: &str, layer: &crate::lenet::ConvLayer, side: usize| LayerShape {
        name: name.to_string(),
        out_features: layer.out_ch * side * side,
        in_features: layer.in_ch * layer.k * layer.k,
    };
    let fc = |name: &str, layer: &crate::lenet::FcLayer| LayerShape {
        name: name.to_string(),
        out_features: layer.out,
        in_features: layer.input,
    };
    vec![
        conv("conv1", &net.conv1, side1),
        conv("conv2", &net.conv2, side2),
        fc("fc1", &net.fc1),
        fc("fc2", &net.fc2),
        fc("fc3", &net.fc3),
    ]
}

/// A deterministic batch of model inputs drawn from the synthetic MNIST
/// set: `count` pooled-and-quantized digit vectors with their labels.
#[must_use]
pub fn sample_batch(seed: u64, count: usize) -> Vec<(u8, Vec<i32>)> {
    let digits = crate::mnist::SyntheticMnist::new(seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x51ab_c0de);
    (0..count)
        .map(|i| {
            let digit = (i % 10) as u8;
            let img = digits.image(digit, rng.gen::<u64>() % 8);
            (digit, QuantModel::input_from_image(&img))
        })
        .collect()
}
