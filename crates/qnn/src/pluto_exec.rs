//! pLUTo execution of the QNN kernels (paper §9).
//!
//! The binarised network's inner product is
//! `dot(a, b) = 2·popcount(XNOR(a, b)) − n` — precisely the bit counting +
//! bitwise operations pLUTo excels at (Table 6). [`binary_dot_pluto`] runs
//! that kernel *functionally* on a [`Session`]'s machine: one XNOR
//! LUT-query stream over bit pairs and a BC-8 popcount fold, validated
//! against the reference. [`qnn_query_count`] extends the per-kernel costs
//! to the whole network via the layer MAC counts, feeding the Table 7 cost
//! model.

use crate::lenet::{LeNet5, Precision};
use pluto_core::lut::catalog;
use pluto_core::session::Session;
use pluto_core::{DesignKind, PlutoError, PlutoMachine};
use pluto_dram::{PicoJoules, Picos};

/// Builds a [`Session`] sized for the QNN kernels (the measurement
/// geometry with 64 subarrays per bank).
///
/// # Errors
/// Propagates machine construction errors.
pub fn qnn_session(design: DesignKind) -> Result<Session, PlutoError> {
    Session::builder(design).subarrays(64).build()
}

/// Builds a machine sized for the QNN kernels.
///
/// # Errors
/// Propagates machine construction errors.
#[deprecated(note = "use qnn_session (DESIGN.md §5)")]
pub fn qnn_machine(design: DesignKind) -> Result<PlutoMachine, PlutoError> {
    qnn_session(design).map(Session::into_machine)
}

/// Computes many binary dot products at once: row `i` of `a_rows`/`b_rows`
/// is a pair of bit vectors (1 ⇔ +1). Returns one signed dot product per
/// row.
///
/// The mapping packs bit pairs per position and issues: one XNOR(1) query
/// stream per position batch, then BC-8 popcount queries over the XNOR
/// result bytes, then a host-side (PnM-core) sum — mirroring the paper's
/// "bulk querying of input values using only short sequences of DRAM
/// commands".
///
/// # Errors
/// Propagates machine errors.
pub fn binary_dot_pluto(
    session: &mut Session,
    a_rows: &[Vec<u8>],
    b_rows: &[Vec<u8>],
) -> Result<Vec<i32>, PlutoError> {
    assert_eq!(a_rows.len(), b_rows.len());
    let m = session.machine_mut();
    let xnor1 = catalog::xnor(1)?;
    let bc8 = catalog::popcount(8)?;
    let mut out = Vec::with_capacity(a_rows.len());
    for (a, b) in a_rows.iter().zip(b_rows) {
        assert_eq!(a.len(), b.len());
        let n = a.len();
        let av: Vec<u64> = a.iter().map(|&v| v as u64 & 1).collect();
        let bv: Vec<u64> = b.iter().map(|&v| v as u64 & 1).collect();
        // Bulk XNOR over all positions of this pair.
        let x = m.apply2(&xnor1, &av, 1, &bv, 1)?.values;
        // Pack XNOR bits into bytes and BC-8 them.
        let bytes: Vec<u64> = x
            .chunks(8)
            .map(|c| {
                c.iter()
                    .enumerate()
                    .fold(0u64, |acc, (i, &b)| acc | (b << i))
            })
            .collect();
        let counts = m.apply(&bc8, &bytes)?.values;
        let same: u64 = counts.iter().sum();
        out.push(2 * same as i32 - n as i32);
    }
    Ok(out)
}

/// Number of bulk LUT queries the full network needs per inference batch,
/// per precision. A batch is one source row of elements (8192 slots on the
/// paper's DDR4 rows); MACs map to queries as:
///
/// * 1-bit: one XNOR query + one BC-8 query per 8·8192 MACs (bit-packed),
/// * 4-bit: one mul4 query + two 4-bit add queries per 8192 MACs.
pub fn qnn_query_count(net: &LeNet5) -> u64 {
    let (conv, fc) = net.mac_counts();
    let macs = conv + fc;
    let slots = 8192u64;
    match net.precision {
        Precision::Bit1 => 2 * macs.div_ceil(8 * slots).max(1) * 8,
        Precision::Bit4 => 3 * macs.div_ceil(slots).max(1),
    }
}

/// Modeled pLUTo-BSA inference cost of one image (time and energy) from
/// the query count and the Table 1 closed forms.
pub fn pluto_inference_cost(net: &LeNet5, design: DesignKind) -> (Picos, PicoJoules) {
    let model = pluto_core::DesignModel::new(
        design,
        pluto_dram::TimingParams::ddr4_2400(),
        pluto_dram::EnergyModel::ddr4(),
    );
    let queries = qnn_query_count(net);
    // QNN LUTs are small: XNOR(1) has 4 rows; mul4/add4 have 256.
    let lut_elems = match net.precision {
        Precision::Bit1 => 8, // XNOR + packing helpers
        Precision::Bit4 => 256,
    };
    // 16-subarray parallelism (Table 3 default).
    let time = Picos::from_ps(model.query_latency(lut_elems).as_ps() * queries / 16);
    let energy = model.query_energy(lut_elems).times(queries);
    (time, energy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lenet::binary_dot_reference;
    use sim_support::{Rng, SeedableRng, StdRng};

    #[test]
    fn binary_dot_matches_reference() {
        let mut rng = StdRng::seed_from_u64(5);
        let rows: Vec<(Vec<u8>, Vec<u8>)> = (0..6)
            .map(|_| {
                let a: Vec<u8> = (0..64).map(|_| rng.gen_range(0..2u8)).collect();
                let b: Vec<u8> = (0..64).map(|_| rng.gen_range(0..2u8)).collect();
                (a, b)
            })
            .collect();
        let a_rows: Vec<Vec<u8>> = rows.iter().map(|r| r.0.clone()).collect();
        let b_rows: Vec<Vec<u8>> = rows.iter().map(|r| r.1.clone()).collect();
        let mut session = qnn_session(DesignKind::Gmc).unwrap();
        let out = binary_dot_pluto(&mut session, &a_rows, &b_rows).unwrap();
        for (i, (a, b)) in rows.iter().enumerate() {
            assert_eq!(out[i], binary_dot_reference(a, b), "row {i}");
        }
    }

    #[test]
    fn query_counts_scale_with_precision() {
        let net1 = LeNet5::new(Precision::Bit1, 0);
        let net4 = LeNet5::new(Precision::Bit4, 0);
        assert!(
            qnn_query_count(&net4) > qnn_query_count(&net1),
            "4-bit needs more queries than binary"
        );
    }

    #[test]
    fn pluto_cost_orderings() {
        // 4-bit inference is slower than 1-bit (Table 7: 23 µs vs 30 µs),
        // and both complete in tens of microseconds.
        let net1 = LeNet5::new(Precision::Bit1, 0);
        let net4 = LeNet5::new(Precision::Bit4, 0);
        let (t1, e1) = pluto_inference_cost(&net1, DesignKind::Bsa);
        let (t4, e4) = pluto_inference_cost(&net4, DesignKind::Bsa);
        assert!(t4 > t1);
        assert!(e4 > e1);
        assert!(t1.as_us() < 200.0, "1-bit time {t1}");
    }
}
