//! pLUTo execution of the QNN kernels (paper §9).
//!
//! The binarised network's inner product is
//! `dot(a, b) = 2·popcount(XNOR(a, b)) − n` — precisely the bit counting +
//! bitwise operations pLUTo excels at (Table 6). [`binary_dot_pluto`] runs
//! that kernel *functionally* on a [`Session`]'s machine: one XNOR
//! LUT-query stream over bit pairs and a BC-8 popcount fold, validated
//! against the reference. [`binary_dot_cluster`] runs the same kernel as
//! a first-class [`Workload`] through a multi-worker
//! [`pluto_core::cluster::Cluster`], sharding the row pairs across the
//! pool — the per-layer LUT maps of a whole network submit as one batch.
//! [`qnn_query_count`] extends the per-kernel costs to the whole network
//! via the layer MAC counts, feeding the Table 7 cost model.

use crate::lenet::{binary_dot_reference, LeNet5, Precision};
use pluto_core::cluster::Cluster;
use pluto_core::lut::catalog;
use pluto_core::session::{CostReport, ExecConfig, Session, Workload};
use pluto_core::{DesignKind, PlutoError};
use pluto_dram::{PicoJoules, Picos};
use sim_support::StdRng;
use std::sync::{Arc, Mutex};

/// The execution configuration of the QNN kernels: the measurement
/// geometry with 64 subarrays per bank.
pub fn qnn_exec_config(design: DesignKind) -> ExecConfig {
    let mut cfg = ExecConfig::measurement(design);
    cfg.subarrays_per_bank = 64;
    cfg
}

/// Builds a [`Session`] sized for the QNN kernels
/// ([`qnn_exec_config`]'s geometry).
///
/// # Errors
/// Propagates machine construction errors.
pub fn qnn_session(design: DesignKind) -> Result<Session, PlutoError> {
    Session::with_config(qnn_exec_config(design))
}

/// Computes many binary dot products at once: row `i` of `a_rows`/`b_rows`
/// is a pair of bit vectors (1 ⇔ +1). Returns one signed dot product per
/// row.
///
/// The mapping packs bit pairs per position and issues: one XNOR(1) query
/// stream per position batch, then BC-8 popcount queries over the XNOR
/// result bytes, then a host-side (PnM-core) sum — mirroring the paper's
/// "bulk querying of input values using only short sequences of DRAM
/// commands".
///
/// # Errors
/// Propagates machine errors.
pub fn binary_dot_pluto(
    session: &mut Session,
    a_rows: &[Vec<u8>],
    b_rows: &[Vec<u8>],
) -> Result<Vec<i32>, PlutoError> {
    binary_dot_on(session.machine_mut(), a_rows, b_rows)
}

/// The kernel proper, on a bare machine (shared by the session path and
/// the cluster workload).
fn binary_dot_on(
    m: &mut pluto_core::PlutoMachine,
    a_rows: &[Vec<u8>],
    b_rows: &[Vec<u8>],
) -> Result<Vec<i32>, PlutoError> {
    assert_eq!(a_rows.len(), b_rows.len());
    let xnor1 = catalog::xnor(1)?;
    let bc8 = catalog::popcount(8)?;
    let mut out = Vec::with_capacity(a_rows.len());
    // Staging buffers reused across every row pair (a LeNet-scale layer
    // runs hundreds of pairs through one machine).
    let mut av: Vec<u64> = Vec::new();
    let mut bv: Vec<u64> = Vec::new();
    let mut bytes: Vec<u64> = Vec::new();
    for (a, b) in a_rows.iter().zip(b_rows) {
        assert_eq!(a.len(), b.len());
        let n = a.len();
        av.clear();
        av.extend(a.iter().map(|&v| v as u64 & 1));
        bv.clear();
        bv.extend(b.iter().map(|&v| v as u64 & 1));
        // Bulk XNOR over all positions of this pair.
        let x = m.apply2(&xnor1, &av, 1, &bv, 1)?.values;
        // Pack XNOR bits into bytes and BC-8 them.
        bytes.clear();
        bytes.extend(x.chunks(8).map(|c| {
            c.iter()
                .enumerate()
                .fold(0u64, |acc, (i, &b)| acc | (b << i))
        }));
        let counts = m.apply(&bc8, &bytes)?.values;
        let same: u64 = counts.iter().sum();
        out.push(2 * same as i32 - n as i32);
    }
    Ok(out)
}

/// Rows per [`BinaryDotWorkload`] shard: small enough that a LeNet-scale
/// layer fans out across every worker, large enough to amortize shard
/// overhead.
const DOT_SHARD_ROWS: usize = 16;

/// Shared output sink for the shards of one [`BinaryDotWorkload`]
/// submission: `(first_row, dot_products)` per shard, reassembled in row
/// order by [`binary_dot_cluster`].
type DotSink = Arc<Mutex<Vec<(usize, Vec<i32>)>>>;

/// The binary XNOR-popcount inner product as a first-class pluggable
/// [`Workload`]: the QNN's per-layer LUT maps run through the same
/// cluster pool as every other scenario, with row pairs sharded across
/// workers ([`Workload::shards`]) and outputs delivered through a shared
/// sink.
#[derive(Debug)]
pub struct BinaryDotWorkload {
    a_rows: Vec<Vec<u8>>,
    b_rows: Vec<Vec<u8>>,
    /// Global index of `a_rows[0]` (shards preserve row order).
    first_row: usize,
    sink: DotSink,
}

impl BinaryDotWorkload {
    /// A workload over paired bit-vector rows (1 ⇔ +1), publishing each
    /// shard's dot products into `sink`.
    ///
    /// # Panics
    /// Panics if the row counts differ.
    pub fn new(a_rows: Vec<Vec<u8>>, b_rows: Vec<Vec<u8>>, sink: DotSink) -> Self {
        assert_eq!(a_rows.len(), b_rows.len());
        BinaryDotWorkload {
            a_rows,
            b_rows,
            first_row: 0,
            sink,
        }
    }
}

impl Workload for BinaryDotWorkload {
    fn id(&self) -> &'static str {
        "QNN-BinaryDot"
    }

    fn prepare(&mut self, _rng: &mut StdRng) {
        // Inputs are caller-provided (network activations/weights), not
        // generated.
    }

    fn run_pluto(&mut self, session: &mut Session) -> Result<Vec<u8>, PlutoError> {
        let out = binary_dot_on(session.machine_mut(), &self.a_rows, &self.b_rows)?;
        let encoded = encode_dots(&out);
        self.sink
            .lock()
            .expect("dot sink poisoned")
            .push((self.first_row, out));
        Ok(encoded)
    }

    fn run_reference(&self) -> Vec<u8> {
        let expect: Vec<i32> = self
            .a_rows
            .iter()
            .zip(&self.b_rows)
            .map(|(a, b)| binary_dot_reference(a, b))
            .collect();
        encode_dots(&expect)
    }

    fn input_bytes(&self) -> f64 {
        // Two bit operands per position.
        let bits: usize = self.a_rows.iter().map(Vec::len).sum();
        (2 * bits) as f64 / 8.0
    }

    fn min_subarrays(&self) -> u16 {
        64
    }

    fn shards(&self) -> Vec<Box<dyn Workload>> {
        self.a_rows
            .chunks(DOT_SHARD_ROWS)
            .zip(self.b_rows.chunks(DOT_SHARD_ROWS))
            .enumerate()
            .map(|(i, (ca, cb))| {
                Box::new(BinaryDotWorkload {
                    a_rows: ca.to_vec(),
                    b_rows: cb.to_vec(),
                    first_row: self.first_row + i * DOT_SHARD_ROWS,
                    sink: Arc::clone(&self.sink),
                }) as Box<dyn Workload>
            })
            .collect()
    }
}

fn encode_dots(values: &[i32]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// Computes many binary dot products through a [`Cluster`]: the row
/// pairs shard across the pool's workers, every shard is validated
/// against the reference, and the outputs reassemble in row order.
/// Returns the dot products plus the reduced (shard-summed, §6-style)
/// cost report of the whole batch.
///
/// # Errors
/// Propagates machine/workload errors; fails if validation missed
/// (`InvalidProgram`) — which the reference comparison precludes short of
/// a simulator bug.
///
/// # Panics
/// Panics if `cluster` has submissions pending from before this call:
/// this function submits and runs one batch, so callers must collect
/// their own in-flight batch with [`Cluster::run`] first.
pub fn binary_dot_cluster(
    cluster: &mut Cluster,
    design: DesignKind,
    a_rows: &[Vec<u8>],
    b_rows: &[Vec<u8>],
) -> Result<(Vec<i32>, CostReport), PlutoError> {
    assert_eq!(
        cluster.pending(),
        0,
        "binary_dot_cluster runs its own batch; collect pending submissions with run() first"
    );
    let sink: DotSink = Arc::new(Mutex::new(Vec::new()));
    let workload = BinaryDotWorkload::new(a_rows.to_vec(), b_rows.to_vec(), Arc::clone(&sink));
    cluster.submit_sharded(qnn_exec_config(design), Box::new(workload));
    let report = cluster.run()?.remove(0);
    if !report.validated {
        return Err(PlutoError::InvalidProgram {
            reason: "binary dot kernel mismatched the reference".into(),
        });
    }
    let mut parts = sink.lock().expect("dot sink poisoned");
    parts.sort_by_key(|(first_row, _)| *first_row);
    let out: Vec<i32> = parts.drain(..).flat_map(|(_, vals)| vals).collect();
    Ok((out, report))
}

/// Number of bulk LUT queries the full network needs per inference batch,
/// per precision. A batch is one source row of elements (8192 slots on the
/// paper's DDR4 rows); MACs map to queries as:
///
/// * 1-bit: one XNOR query + one BC-8 query per 8·8192 MACs (bit-packed),
/// * 4-bit: one mul4 query + two 4-bit add queries per 8192 MACs.
pub fn qnn_query_count(net: &LeNet5) -> u64 {
    let (conv, fc) = net.mac_counts();
    let macs = conv + fc;
    let slots = 8192u64;
    match net.precision {
        Precision::Bit1 => 2 * macs.div_ceil(8 * slots).max(1) * 8,
        Precision::Bit4 => 3 * macs.div_ceil(slots).max(1),
    }
}

/// Modeled pLUTo-BSA inference cost of one image (time and energy) from
/// the query count and the Table 1 closed forms.
pub fn pluto_inference_cost(net: &LeNet5, design: DesignKind) -> (Picos, PicoJoules) {
    let model = pluto_core::DesignModel::new(
        design,
        pluto_dram::TimingParams::ddr4_2400(),
        pluto_dram::EnergyModel::ddr4(),
    );
    let queries = qnn_query_count(net);
    // QNN LUTs are small: XNOR(1) has 4 rows; mul4/add4 have 256.
    let lut_elems = match net.precision {
        Precision::Bit1 => 8, // XNOR + packing helpers
        Precision::Bit4 => 256,
    };
    // 16-subarray parallelism (Table 3 default).
    let time = Picos::from_ps(model.query_latency(lut_elems).as_ps() * queries / 16);
    let energy = model.query_energy(lut_elems).times(queries);
    (time, energy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lenet::binary_dot_reference;
    use sim_support::{Rng, SeedableRng, StdRng};

    #[test]
    fn binary_dot_matches_reference() {
        let mut rng = StdRng::seed_from_u64(5);
        let rows: Vec<(Vec<u8>, Vec<u8>)> = (0..6)
            .map(|_| {
                let a: Vec<u8> = (0..64).map(|_| rng.gen_range(0..2u8)).collect();
                let b: Vec<u8> = (0..64).map(|_| rng.gen_range(0..2u8)).collect();
                (a, b)
            })
            .collect();
        let a_rows: Vec<Vec<u8>> = rows.iter().map(|r| r.0.clone()).collect();
        let b_rows: Vec<Vec<u8>> = rows.iter().map(|r| r.1.clone()).collect();
        let mut session = qnn_session(DesignKind::Gmc).unwrap();
        let out = binary_dot_pluto(&mut session, &a_rows, &b_rows).unwrap();
        for (i, (a, b)) in rows.iter().enumerate() {
            assert_eq!(out[i], binary_dot_reference(a, b), "row {i}");
        }
    }

    #[test]
    fn cluster_dot_matches_session_dot_for_any_worker_count() {
        let mut rng = StdRng::seed_from_u64(11);
        // 40 rows -> three shards of 16/16/8.
        let a_rows: Vec<Vec<u8>> = (0..40)
            .map(|_| (0..32).map(|_| rng.gen_range(0..2u8)).collect())
            .collect();
        let b_rows: Vec<Vec<u8>> = (0..40)
            .map(|_| (0..32).map(|_| rng.gen_range(0..2u8)).collect())
            .collect();
        let mut session = qnn_session(DesignKind::Bsa).unwrap();
        let serial = binary_dot_pluto(&mut session, &a_rows, &b_rows).unwrap();
        for workers in [1, 4] {
            let mut cluster = Cluster::new(workers);
            let (out, report) =
                binary_dot_cluster(&mut cluster, DesignKind::Bsa, &a_rows, &b_rows).unwrap();
            assert_eq!(out, serial, "{workers} workers");
            assert!(report.validated);
            assert!(report.time > Picos::ZERO);
        }
    }

    #[test]
    fn cluster_dot_reduction_is_reproducible() {
        let a = vec![vec![1u8, 0, 1, 1]; 33];
        let b = vec![vec![1u8, 1, 0, 1]; 33];
        let run = || {
            let mut cluster = Cluster::new(3);
            binary_dot_cluster(&mut cluster, DesignKind::Gmc, &a, &b).unwrap()
        };
        let (out1, rep1) = run();
        let (out2, rep2) = run();
        assert_eq!(out1, out2);
        assert_eq!(rep1, rep2, "shard reduction must be bit-stable");
    }

    #[test]
    fn query_counts_scale_with_precision() {
        let net1 = LeNet5::new(Precision::Bit1, 0);
        let net4 = LeNet5::new(Precision::Bit4, 0);
        assert!(
            qnn_query_count(&net4) > qnn_query_count(&net1),
            "4-bit needs more queries than binary"
        );
    }

    #[test]
    fn pluto_cost_orderings() {
        // 4-bit inference is slower than 1-bit (Table 7: 23 µs vs 30 µs),
        // and both complete in tens of microseconds.
        let net1 = LeNet5::new(Precision::Bit1, 0);
        let net4 = LeNet5::new(Precision::Bit4, 0);
        let (t1, e1) = pluto_inference_cost(&net1, DesignKind::Bsa);
        let (t4, e4) = pluto_inference_cost(&net4, DesignKind::Bsa);
        assert!(t4 > t1);
        assert!(e4 > e1);
        assert!(t1.as_us() < 200.0, "1-bit time {t1}");
    }
}
