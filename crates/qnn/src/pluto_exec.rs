//! pLUTo execution of the QNN kernels (paper §9, `DESIGN.md` §12).
//!
//! Two generations of kernel live here. The original binarized inner
//! product — `dot(a, b) = 2·popcount(XNOR(a, b)) − n`, one XNOR(1)
//! query stream plus a BC-8 popcount fold — remains as
//! [`binary_dot_machine`] / [`BinaryDotWorkload`] /
//! [`binary_dot_cluster`], feeding the 1-bit Table 7 row. Layered on
//! top is the quantized-inference pipeline: [`QnnGemvWorkload`] runs a
//! [`QuantLinear`] GEMV tile (either [`GemvPath`] lowering, optional
//! [`Requant`] stage) as a first-class [`Workload`], sharded across the
//! cluster by output-neuron tile; [`gemv_cluster`] and [`mlp_cluster`]
//! drive one layer / a whole [`QuantModel`] through the pool with
//! row-order reassembly; [`QnnMlpWorkload`] packages end-to-end
//! forward passes for the registry and figure harness.
//!
//! [`qnn_query_count`] derives the Table 7 query totals from the layer
//! graph ([`lenet_layer_shapes`]) rather than hand-maintained MAC
//! constants.

use crate::gemv::{signed_max, signed_min, GemvPath, QuantLinear};
use crate::lenet::{binary_dot_reference, LeNet5, Precision};
use crate::model::{lenet_layer_shapes, sample_batch, QuantModel};
use crate::requant::Requant;
use pluto_core::cluster::Cluster;
use pluto_core::lut::catalog;
use pluto_core::session::{CostReport, ExecConfig, Session, Workload};
use pluto_core::{DesignKind, PlutoError};
use pluto_dram::{PicoJoules, Picos};
use sim_support::{Rng, SeedableRng, StdRng};
use std::ops::Range;
use std::sync::{Arc, Mutex};

/// The execution configuration of the QNN kernels: the measurement
/// geometry with 64 subarrays per bank (enough for the binary-dot and
/// nibble-plane stores; the direct-path workloads raise the pool
/// further through [`Workload::min_subarrays`]).
pub fn qnn_exec_config(design: DesignKind) -> ExecConfig {
    let mut cfg = ExecConfig::measurement(design);
    cfg.subarrays_per_bank = 64;
    cfg
}

/// The execution configuration of the direct-path inference pipeline:
/// measurement geometry with a subarray pool wide enough to hold a
/// partitioned 65 536-entry product store, a requantization store, and
/// the data subarray simultaneously.
pub fn mlp_exec_config(design: DesignKind) -> ExecConfig {
    let mut cfg = ExecConfig::measurement(design);
    cfg.subarrays_per_bank = DIRECT_SUBARRAYS;
    cfg
}

/// Subarray demand of the direct 8-bit path: 128 §5.6 segments × 2
/// subarrays for the product store, 8 × 2 for the 12-bit requantization
/// store, plus the data subarray and slack.
const DIRECT_SUBARRAYS: u16 = 280;

/// The kernel proper, on a bare machine (shared by the session path and
/// the cluster workload).
///
/// # Errors
/// Propagates machine errors.
///
/// # Panics
/// Panics if the row counts or pair lengths differ.
pub fn binary_dot_machine(
    m: &mut pluto_core::PlutoMachine,
    a_rows: &[Vec<u8>],
    b_rows: &[Vec<u8>],
) -> Result<Vec<i32>, PlutoError> {
    assert_eq!(a_rows.len(), b_rows.len());
    let xnor1 = catalog::xnor(1)?;
    let bc8 = catalog::popcount(8)?;
    let mut out = Vec::with_capacity(a_rows.len());
    // Staging buffers reused across every row pair (a LeNet-scale layer
    // runs hundreds of pairs through one machine).
    let mut av: Vec<u64> = Vec::new();
    let mut bv: Vec<u64> = Vec::new();
    let mut bytes: Vec<u64> = Vec::new();
    for (a, b) in a_rows.iter().zip(b_rows) {
        assert_eq!(a.len(), b.len());
        let n = a.len();
        av.clear();
        av.extend(a.iter().map(|&v| v as u64 & 1));
        bv.clear();
        bv.extend(b.iter().map(|&v| v as u64 & 1));
        // Bulk XNOR over all positions of this pair.
        let x = m.apply2(&xnor1, &av, 1, &bv, 1)?.values;
        // Pack XNOR bits into bytes and BC-8 them.
        bytes.clear();
        bytes.extend(x.chunks(8).map(|c| {
            c.iter()
                .enumerate()
                .fold(0u64, |acc, (i, &b)| acc | (b << i))
        }));
        let counts = m.apply(&bc8, &bytes)?.values;
        let same: u64 = counts.iter().sum();
        out.push(2 * same as i32 - n as i32);
    }
    Ok(out)
}

/// Rows per [`BinaryDotWorkload`] shard: small enough that a LeNet-scale
/// layer fans out across every worker, large enough to amortize shard
/// overhead.
const DOT_SHARD_ROWS: usize = 16;

/// Shared output sink for the shards of one submission:
/// `(first_row, values)` per shard, reassembled in row order by
/// [`binary_dot_cluster`] / [`gemv_cluster`].
type DotSink = Arc<Mutex<Vec<(usize, Vec<i32>)>>>;

/// The binary XNOR-popcount inner product as a first-class pluggable
/// [`Workload`]: the QNN's per-layer LUT maps run through the same
/// cluster pool as every other scenario, with row pairs sharded across
/// workers ([`Workload::shards`]) and outputs delivered through a shared
/// sink.
#[derive(Debug)]
pub struct BinaryDotWorkload {
    a_rows: Vec<Vec<u8>>,
    b_rows: Vec<Vec<u8>>,
    /// Global index of `a_rows[0]` (shards preserve row order).
    first_row: usize,
    sink: DotSink,
}

impl BinaryDotWorkload {
    /// A workload over paired bit-vector rows (1 ⇔ +1), publishing each
    /// shard's dot products into `sink`.
    ///
    /// # Panics
    /// Panics if the row counts differ.
    pub fn new(a_rows: Vec<Vec<u8>>, b_rows: Vec<Vec<u8>>, sink: DotSink) -> Self {
        assert_eq!(a_rows.len(), b_rows.len());
        BinaryDotWorkload {
            a_rows,
            b_rows,
            first_row: 0,
            sink,
        }
    }
}

impl Workload for BinaryDotWorkload {
    fn id(&self) -> &'static str {
        "QNN-BinaryDot"
    }

    fn prepare(&mut self, _rng: &mut StdRng) {
        // Inputs are caller-provided (network activations/weights), not
        // generated.
    }

    fn run_pluto(&mut self, session: &mut Session) -> Result<Vec<u8>, PlutoError> {
        let out = binary_dot_machine(session.machine_mut(), &self.a_rows, &self.b_rows)?;
        let encoded = encode_i32(&out);
        self.sink
            .lock()
            .expect("dot sink poisoned")
            .push((self.first_row, out));
        Ok(encoded)
    }

    fn run_reference(&self) -> Vec<u8> {
        let expect: Vec<i32> = self
            .a_rows
            .iter()
            .zip(&self.b_rows)
            .map(|(a, b)| binary_dot_reference(a, b))
            .collect();
        encode_i32(&expect)
    }

    fn input_bytes(&self) -> f64 {
        // Two bit operands per position.
        let bits: usize = self.a_rows.iter().map(Vec::len).sum();
        (2 * bits) as f64 / 8.0
    }

    fn min_subarrays(&self) -> u16 {
        64
    }

    fn shards(&self) -> Vec<Box<dyn Workload>> {
        self.a_rows
            .chunks(DOT_SHARD_ROWS)
            .zip(self.b_rows.chunks(DOT_SHARD_ROWS))
            .enumerate()
            .map(|(i, (ca, cb))| {
                Box::new(BinaryDotWorkload {
                    a_rows: ca.to_vec(),
                    b_rows: cb.to_vec(),
                    first_row: self.first_row + i * DOT_SHARD_ROWS,
                    sink: Arc::clone(&self.sink),
                }) as Box<dyn Workload>
            })
            .collect()
    }
}

fn encode_i32(values: &[i32]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// Computes many binary dot products through a [`Cluster`]: the row
/// pairs shard across the pool's workers, every shard is validated
/// against the reference, and the outputs reassemble in row order.
/// Returns the dot products plus the reduced (shard-summed, §6-style)
/// cost report of the whole batch.
///
/// # Errors
/// Propagates machine/workload errors; fails if validation missed
/// (`InvalidProgram`) — which the reference comparison precludes short of
/// a simulator bug.
///
/// # Panics
/// Panics if `cluster` has submissions pending from before this call:
/// this function submits and runs one batch, so callers must collect
/// their own in-flight batch with [`Cluster::run`] first.
pub fn binary_dot_cluster(
    cluster: &mut Cluster,
    design: DesignKind,
    a_rows: &[Vec<u8>],
    b_rows: &[Vec<u8>],
) -> Result<(Vec<i32>, CostReport), PlutoError> {
    let sink: DotSink = Arc::new(Mutex::new(Vec::new()));
    let workload = BinaryDotWorkload::new(a_rows.to_vec(), b_rows.to_vec(), Arc::clone(&sink));
    let report = run_one_sharded(cluster, qnn_exec_config(design), Box::new(workload))?;
    let mut parts = sink.lock().expect("dot sink poisoned");
    parts.sort_by_key(|(first_row, _)| *first_row);
    let out: Vec<i32> = parts.drain(..).flat_map(|(_, vals)| vals).collect();
    Ok((out, report))
}

/// Submits one workload sharded, runs the batch, and enforces
/// validation.
fn run_one_sharded(
    cluster: &mut Cluster,
    config: ExecConfig,
    workload: Box<dyn Workload>,
) -> Result<CostReport, PlutoError> {
    assert_eq!(
        cluster.pending(),
        0,
        "this helper runs its own batch; collect pending submissions with run() first"
    );
    let id = workload.id();
    cluster.submit_sharded(config, workload);
    let report = cluster.run()?.remove(0);
    if !report.validated {
        return Err(PlutoError::InvalidProgram {
            reason: format!("{id} mismatched the reference"),
        });
    }
    Ok(report)
}

/// Output-neuron rows per [`QnnGemvWorkload`] shard: a LeNet-scale
/// layer's 32-row GEMV fans out across four workers.
pub const GEMV_TILE_ROWS: usize = 8;

/// One [`QuantLinear`] GEMV (plus optional [`Requant`] stage) as a
/// first-class [`Workload`]: multiplies run as LUT queries
/// ([`GemvPath`]), accumulation is host-side, and
/// [`Workload::shards`] tiles the output neurons in
/// [`GEMV_TILE_ROWS`]-row slices — the shard-by-neuron-tile axis of
/// `DESIGN.md` §12.
#[derive(Debug)]
pub struct QnnGemvWorkload {
    linear: Arc<QuantLinear>,
    requant: Option<Requant>,
    x: Vec<i32>,
    path: GemvPath,
    /// The output-neuron tile this instance computes.
    rows: Range<usize>,
    /// Shards (and explicit-input workloads) pin their operands;
    /// registry instances regenerate from the session rng.
    pinned: bool,
    sink: Option<DotSink>,
}

impl QnnGemvWorkload {
    /// The registry scenario: a 32×48 int8 GEMV on the direct path with
    /// a 12-bit requantization stage, operands regenerated from the
    /// session rng on [`Workload::prepare`].
    #[must_use]
    pub fn new() -> Self {
        let mut rng = StdRng::seed_from_u64(0);
        let (linear, x) = Self::regenerate(&mut rng);
        QnnGemvWorkload {
            linear,
            requant: Some(Requant::new(12, 2, 8)),
            x,
            path: GemvPath::Direct,
            rows: 0..REGISTRY_OUT,
            pinned: false,
            sink: None,
        }
    }

    /// A pinned workload over explicit operands, publishing each tile's
    /// outputs into `sink` for row-order reassembly.
    ///
    /// # Panics
    /// Panics if `x` disagrees with the layer shape.
    #[must_use]
    pub fn with_input(
        linear: Arc<QuantLinear>,
        requant: Option<Requant>,
        x: Vec<i32>,
        path: GemvPath,
        sink: Option<DotSink>,
    ) -> Self {
        assert_eq!(x.len(), linear.in_features(), "activation count");
        let rows = 0..linear.out_features();
        QnnGemvWorkload {
            linear,
            requant,
            x,
            path,
            rows,
            pinned: true,
            sink,
        }
    }

    fn regenerate(rng: &mut StdRng) -> (Arc<QuantLinear>, Vec<i32>) {
        let linear = Arc::new(QuantLinear::seeded(
            "qnn-gemv8",
            REGISTRY_OUT,
            REGISTRY_IN,
            8,
            -16..=15,
            rng,
        ));
        let x = (0..REGISTRY_IN).map(|_| rng.gen_range(-64..=63)).collect();
        (linear, x)
    }
}

const REGISTRY_OUT: usize = 32;
const REGISTRY_IN: usize = 48;

impl Default for QnnGemvWorkload {
    fn default() -> Self {
        QnnGemvWorkload::new()
    }
}

impl Workload for QnnGemvWorkload {
    fn id(&self) -> &'static str {
        pluto_baselines::WorkloadId::QnnGemv8.label()
    }

    fn prepare(&mut self, rng: &mut StdRng) {
        if self.pinned {
            return;
        }
        let (linear, x) = Self::regenerate(rng);
        self.rows = 0..linear.out_features();
        self.linear = linear;
        self.x = x;
    }

    fn run_pluto(&mut self, session: &mut Session) -> Result<Vec<u8>, PlutoError> {
        let m = session.machine_mut();
        let accs = self
            .linear
            .forward_rows_on(m, &self.x, self.path, self.rows.clone())?;
        let out = match &self.requant {
            Some(r) => r.apply_on(m, &accs)?,
            None => accs,
        };
        let encoded = encode_i32(&out);
        if let Some(sink) = &self.sink {
            sink.lock()
                .expect("gemv sink poisoned")
                .push((self.rows.start, out));
        }
        Ok(encoded)
    }

    fn run_reference(&self) -> Vec<u8> {
        let accs = self
            .linear
            .forward_rows_reference(&self.x, self.rows.clone());
        let out: Vec<i32> = match &self.requant {
            Some(r) => accs.iter().map(|&a| r.apply_host(a)).collect(),
            None => accs,
        };
        encode_i32(&out)
    }

    fn input_bytes(&self) -> f64 {
        // The tile's weight rows plus one activation vector.
        let operands = (self.rows.len() + 1) * self.linear.in_features();
        (operands * self.linear.width() as usize) as f64 / 8.0
    }

    fn min_subarrays(&self) -> u16 {
        match self.path {
            GemvPath::Direct => DIRECT_SUBARRAYS,
            GemvPath::NibblePlane => 64,
        }
    }

    fn shards(&self) -> Vec<Box<dyn Workload>> {
        let rows: Vec<usize> = self.rows.clone().collect();
        rows.chunks(GEMV_TILE_ROWS)
            .map(|tile| {
                Box::new(QnnGemvWorkload {
                    linear: Arc::clone(&self.linear),
                    requant: self.requant,
                    x: self.x.clone(),
                    path: self.path,
                    rows: tile[0]..tile[tile.len() - 1] + 1,
                    pinned: true,
                    sink: self.sink.clone(),
                }) as Box<dyn Workload>
            })
            .collect()
    }
}

/// Runs one [`QuantLinear`] layer (GEMV + optional requantization)
/// through a [`Cluster`], sharded by output-neuron tile, with outputs
/// reassembled in row order. Returns the layer's output vector plus the
/// shard-reduced cost report.
///
/// # Errors
/// Propagates machine/workload errors; `InvalidProgram` on a validation
/// miss.
///
/// # Panics
/// Panics if `cluster` has submissions pending from before this call.
pub fn gemv_cluster(
    cluster: &mut Cluster,
    config: ExecConfig,
    linear: &Arc<QuantLinear>,
    requant: Option<Requant>,
    x: &[i32],
    path: GemvPath,
) -> Result<(Vec<i32>, CostReport), PlutoError> {
    let sink: DotSink = Arc::new(Mutex::new(Vec::new()));
    let workload = QnnGemvWorkload::with_input(
        Arc::clone(linear),
        requant,
        x.to_vec(),
        path,
        Some(Arc::clone(&sink)),
    );
    let report = run_one_sharded(cluster, config, Box::new(workload))?;
    let mut parts = sink.lock().expect("gemv sink poisoned");
    parts.sort_by_key(|(first_row, _)| *first_row);
    let out: Vec<i32> = parts.drain(..).flat_map(|(_, vals)| vals).collect();
    Ok((out, report))
}

/// Runs a whole [`QuantModel`] forward pass through a [`Cluster`]:
/// every layer is one [`gemv_cluster`] batch (output-neuron tiles
/// across the pool), activations flow host-side between layers, and
/// the per-layer reports reduce into one pipeline report. Returns the
/// logits plus that reduced report; `layer_reports` gives the
/// per-layer breakdown when the caller wants it.
///
/// # Errors
/// Propagates machine/workload errors.
///
/// # Panics
/// Panics if `cluster` has submissions pending, or the model is empty.
pub fn mlp_cluster(
    cluster: &mut Cluster,
    config: ExecConfig,
    model: &QuantModel,
    x: &[i32],
    path: GemvPath,
) -> Result<(Vec<i32>, CostReport), PlutoError> {
    let (out, mut reports) = mlp_cluster_layers(cluster, config, model, x, path)?;
    let mut total = reports.remove(0);
    for report in &reports {
        total.absorb(report);
    }
    total.workload = "QNN-MLP";
    Ok((out, total))
}

/// [`mlp_cluster`] with the per-layer [`CostReport`] breakdown kept
/// separate (one report per [`crate::model::Layer`], in layer order).
///
/// # Errors
/// Propagates machine/workload errors.
///
/// # Panics
/// Panics if `cluster` has submissions pending, or the model is empty.
pub fn mlp_cluster_layers(
    cluster: &mut Cluster,
    config: ExecConfig,
    model: &QuantModel,
    x: &[i32],
    path: GemvPath,
) -> Result<(Vec<i32>, Vec<CostReport>), PlutoError> {
    assert!(!model.layers.is_empty(), "empty model");
    let mut act = x.to_vec();
    let mut reports = Vec::with_capacity(model.layers.len());
    for layer in &model.layers {
        let (out, report) = gemv_cluster(
            cluster,
            config.clone(),
            &layer.linear,
            layer.requant,
            &act,
            path,
        )?;
        act = out;
        reports.push(report);
    }
    Ok((act, reports))
}

/// An end-to-end quantized MLP forward pass as a first-class
/// [`Workload`]: synthetic MNIST digits through
/// [`QuantModel::mnist_mlp`] on one machine, every layer a GEMV query
/// stream plus a requantization query stream, validated against the
/// host `i32` oracle. Batches of two or more samples shard by sample
/// across the cluster ([`QnnMlpWorkload::with_batch`]); the registry
/// instance runs one.
#[derive(Debug)]
pub struct QnnMlpWorkload {
    model: Arc<QuantModel>,
    samples: Vec<(u8, Vec<i32>)>,
    path: GemvPath,
    batch: usize,
    first_sample: usize,
    pinned: bool,
    sink: Option<DotSink>,
}

impl QnnMlpWorkload {
    /// The registry scenario: one synthetic MNIST digit through the
    /// 196→32→16→10 reference MLP on the direct path, the sample
    /// regenerated from the session rng on [`Workload::prepare`].
    #[must_use]
    pub fn new() -> Self {
        QnnMlpWorkload::with_batch(1)
    }

    /// A batch of `samples` digits; batches of two or more shard by
    /// sample across the cluster.
    ///
    /// # Panics
    /// Panics on an empty batch.
    #[must_use]
    pub fn with_batch(samples: usize) -> Self {
        assert!(samples > 0, "empty batch");
        QnnMlpWorkload {
            model: Arc::new(QuantModel::mnist_mlp(MLP_MODEL_SEED)),
            samples: sample_batch(0, samples),
            path: GemvPath::Direct,
            batch: samples,
            first_sample: 0,
            pinned: false,
            sink: None,
        }
    }

    /// The model every instance runs (seeded, deterministic).
    #[must_use]
    pub fn model(&self) -> &QuantModel {
        &self.model
    }
}

/// Seed of the registry MLP's weights ([`QuantModel::mnist_mlp`]).
pub const MLP_MODEL_SEED: u64 = 7;

impl Default for QnnMlpWorkload {
    fn default() -> Self {
        QnnMlpWorkload::new()
    }
}

impl Workload for QnnMlpWorkload {
    fn id(&self) -> &'static str {
        pluto_baselines::WorkloadId::QnnMlp.label()
    }

    fn prepare(&mut self, rng: &mut StdRng) {
        if self.pinned {
            return;
        }
        self.samples = sample_batch(rng.gen(), self.batch);
    }

    fn run_pluto(&mut self, session: &mut Session) -> Result<Vec<u8>, PlutoError> {
        let m = session.machine_mut();
        let mut all = Vec::new();
        for (i, (_, x)) in self.samples.iter().enumerate() {
            let logits = self.model.forward_on(m, x, self.path)?;
            if let Some(sink) = &self.sink {
                sink.lock()
                    .expect("mlp sink poisoned")
                    .push((self.first_sample + i, logits.clone()));
            }
            all.extend(logits);
        }
        Ok(encode_i32(&all))
    }

    fn run_reference(&self) -> Vec<u8> {
        let all: Vec<i32> = self
            .samples
            .iter()
            .flat_map(|(_, x)| self.model.forward_reference(x))
            .collect();
        encode_i32(&all)
    }

    fn input_bytes(&self) -> f64 {
        let per_sample = self.model.layers[0].linear.in_features();
        (self.samples.len() * per_sample) as f64
    }

    fn min_subarrays(&self) -> u16 {
        match self.path {
            GemvPath::Direct => DIRECT_SUBARRAYS,
            GemvPath::NibblePlane => 64,
        }
    }

    fn shards(&self) -> Vec<Box<dyn Workload>> {
        if self.samples.len() < 2 {
            return Vec::new();
        }
        self.samples
            .chunks(1)
            .enumerate()
            .map(|(i, chunk)| {
                Box::new(QnnMlpWorkload {
                    model: Arc::clone(&self.model),
                    samples: chunk.to_vec(),
                    path: self.path,
                    batch: chunk.len(),
                    first_sample: self.first_sample + i,
                    pinned: true,
                    sink: self.sink.clone(),
                }) as Box<dyn Workload>
            })
            .collect()
    }
}

/// Number of bulk LUT queries the full LeNet-5 needs per inference
/// batch, per precision — derived from the layer graph
/// ([`lenet_layer_shapes`]): total MACs are the sum of every layer
/// shape's `out × in`, and a batch is one source row of elements (8192
/// slots on the paper's DDR4 rows). MACs map to queries as:
///
/// * 1-bit: one XNOR query + one BC-8 query per 8·8192 MACs (bit-packed),
/// * 4-bit: one mul4 query + two 4-bit add queries per 8192 MACs.
pub fn qnn_query_count(net: &LeNet5) -> u64 {
    let macs: u64 = lenet_layer_shapes(net)
        .iter()
        .map(crate::model::LayerShape::mac_count)
        .sum();
    batched_queries(macs, net.precision)
}

/// Per-layer view of [`qnn_query_count`]: `(layer name, queries)` with
/// the same MAC→query mapping batched within each layer. Layer-local
/// batching can only pad (each layer rounds its own tail row up), so
/// the per-layer counts sum to at least the cross-layer total.
pub fn qnn_layer_query_counts(net: &LeNet5) -> Vec<(String, u64)> {
    lenet_layer_shapes(net)
        .into_iter()
        .map(|shape| {
            let queries = batched_queries(shape.mac_count(), net.precision);
            (shape.name, queries)
        })
        .collect()
}

fn batched_queries(macs: u64, precision: Precision) -> u64 {
    let slots = 8192u64;
    match precision {
        Precision::Bit1 => 2 * macs.div_ceil(8 * slots).max(1) * 8,
        Precision::Bit4 => 3 * macs.div_ceil(slots).max(1),
    }
}

/// Modeled pLUTo-BSA inference cost of one image (time and energy) from
/// the query count and the Table 1 closed forms.
pub fn pluto_inference_cost(net: &LeNet5, design: DesignKind) -> (Picos, PicoJoules) {
    let model = pluto_core::DesignModel::new(
        design,
        pluto_dram::TimingParams::ddr4_2400(),
        pluto_dram::EnergyModel::ddr4(),
    );
    let queries = qnn_query_count(net);
    // QNN LUTs are small: XNOR(1) has 4 rows; mul4/add4 have 256.
    let lut_elems = match net.precision {
        Precision::Bit1 => 8, // XNOR + packing helpers
        Precision::Bit4 => 256,
    };
    // 16-subarray parallelism (Table 3 default).
    let time = Picos::from_ps(model.query_latency(lut_elems).as_ps() * queries / 16);
    let energy = model.query_energy(lut_elems).times(queries);
    (time, energy)
}

/// Sanity floor used by callers seeding GEMV operands: the registry
/// instances keep activations well inside the operand range so the
/// requantization window stays informative.
#[must_use]
pub fn operand_range(width: u32) -> std::ops::RangeInclusive<i32> {
    signed_min(width)..=signed_max(width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lenet::binary_dot_reference;
    use sim_support::{Rng, SeedableRng, StdRng};

    #[test]
    fn binary_dot_matches_reference() {
        let mut rng = StdRng::seed_from_u64(5);
        let rows: Vec<(Vec<u8>, Vec<u8>)> = (0..6)
            .map(|_| {
                let a: Vec<u8> = (0..64).map(|_| rng.gen_range(0..2u8)).collect();
                let b: Vec<u8> = (0..64).map(|_| rng.gen_range(0..2u8)).collect();
                (a, b)
            })
            .collect();
        let a_rows: Vec<Vec<u8>> = rows.iter().map(|r| r.0.clone()).collect();
        let b_rows: Vec<Vec<u8>> = rows.iter().map(|r| r.1.clone()).collect();
        let mut session = Session::with_config(qnn_exec_config(DesignKind::Gmc)).unwrap();
        let out = binary_dot_machine(session.machine_mut(), &a_rows, &b_rows).unwrap();
        for (i, (a, b)) in rows.iter().enumerate() {
            assert_eq!(out[i], binary_dot_reference(a, b), "row {i}");
        }
    }

    #[test]
    fn cluster_dot_matches_session_dot_for_any_worker_count() {
        let mut rng = StdRng::seed_from_u64(11);
        // 40 rows -> three shards of 16/16/8.
        let a_rows: Vec<Vec<u8>> = (0..40)
            .map(|_| (0..32).map(|_| rng.gen_range(0..2u8)).collect())
            .collect();
        let b_rows: Vec<Vec<u8>> = (0..40)
            .map(|_| (0..32).map(|_| rng.gen_range(0..2u8)).collect())
            .collect();
        let mut session = Session::with_config(qnn_exec_config(DesignKind::Bsa)).unwrap();
        let serial = binary_dot_machine(session.machine_mut(), &a_rows, &b_rows).unwrap();
        for workers in [1, 4] {
            let mut cluster = Cluster::new(workers);
            let (out, report) =
                binary_dot_cluster(&mut cluster, DesignKind::Bsa, &a_rows, &b_rows).unwrap();
            assert_eq!(out, serial, "{workers} workers");
            assert!(report.validated);
            assert!(report.time > Picos::ZERO);
        }
    }

    #[test]
    fn cluster_dot_reduction_is_reproducible() {
        let a = vec![vec![1u8, 0, 1, 1]; 33];
        let b = vec![vec![1u8, 1, 0, 1]; 33];
        let run = || {
            let mut cluster = Cluster::new(3);
            binary_dot_cluster(&mut cluster, DesignKind::Gmc, &a, &b).unwrap()
        };
        let (out1, rep1) = run();
        let (out2, rep2) = run();
        assert_eq!(out1, out2);
        assert_eq!(rep1, rep2, "shard reduction must be bit-stable");
    }

    #[test]
    fn query_counts_scale_with_precision() {
        let net1 = LeNet5::new(Precision::Bit1, 0);
        let net4 = LeNet5::new(Precision::Bit4, 0);
        assert!(
            qnn_query_count(&net4) > qnn_query_count(&net1),
            "4-bit needs more queries than binary"
        );
    }

    #[test]
    fn layer_query_counts_cover_the_graph() {
        for precision in [Precision::Bit1, Precision::Bit4] {
            let net = LeNet5::new(precision, 0);
            let layers = qnn_layer_query_counts(&net);
            assert_eq!(layers.len(), 5, "conv1/conv2/fc1/fc2/fc3");
            assert!(layers.iter().all(|(_, q)| *q > 0));
            let sum: u64 = layers.iter().map(|(_, q)| q).sum();
            assert!(
                sum >= qnn_query_count(&net),
                "per-layer batching can only pad: {sum}"
            );
        }
    }

    #[test]
    fn pluto_cost_orderings() {
        // 4-bit inference is slower than 1-bit (Table 7: 23 µs vs 30 µs),
        // and both complete in tens of microseconds.
        let net1 = LeNet5::new(Precision::Bit1, 0);
        let net4 = LeNet5::new(Precision::Bit4, 0);
        let (t1, e1) = pluto_inference_cost(&net1, DesignKind::Bsa);
        let (t4, e4) = pluto_inference_cost(&net4, DesignKind::Bsa);
        assert!(t4 > t1);
        assert!(e4 > e1);
        assert!(t1.as_us() < 200.0, "1-bit time {t1}");
    }
}
