//! A minimal integer tensor for quantized inference.

use std::fmt;

/// A dense row-major `i32` tensor.
#[derive(Clone, PartialEq, Eq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<i32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}[{} values]", self.shape, self.data.len())
    }
}

impl Tensor {
    /// Zero tensor of the given shape.
    ///
    /// # Panics
    /// Panics if the shape is empty or has a zero dimension.
    pub fn zeros(shape: &[usize]) -> Self {
        assert!(
            !shape.is_empty() && shape.iter().all(|&d| d > 0),
            "bad shape {shape:?}"
        );
        Tensor {
            shape: shape.to_vec(),
            data: vec![0; shape.iter().product()],
        }
    }

    /// Builds a tensor from raw data.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the shape volume.
    pub fn from_vec(shape: &[usize], data: Vec<i32>) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "shape/data mismatch"
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat immutable data access.
    pub fn data(&self) -> &[i32] {
        &self.data
    }

    /// Flat mutable data access.
    pub fn data_mut(&mut self) -> &mut [i32] {
        &mut self.data
    }

    /// 3-D indexed read for `[c, h, w]` tensors.
    ///
    /// # Panics
    /// Panics if the tensor is not 3-D or the index is out of bounds.
    pub fn at3(&self, c: usize, h: usize, w: usize) -> i32 {
        assert_eq!(self.shape.len(), 3);
        let (_, hh, ww) = (self.shape[0], self.shape[1], self.shape[2]);
        self.data[c * hh * ww + h * ww + w]
    }

    /// 3-D indexed write for `[c, h, w]` tensors.
    ///
    /// # Panics
    /// Panics if the tensor is not 3-D or the index is out of bounds.
    pub fn set3(&mut self, c: usize, h: usize, w: usize, v: i32) {
        assert_eq!(self.shape.len(), 3);
        let (_, hh, ww) = (self.shape[0], self.shape[1], self.shape[2]);
        self.data[c * hh * ww + h * ww + w] = v;
    }

    /// Index of the maximum element (first on ties).
    pub fn argmax(&self) -> usize {
        self.data
            .iter()
            .enumerate()
            .max_by_key(|&(i, &v)| (v, std::cmp::Reverse(i)))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_from_vec() {
        let t = Tensor::zeros(&[2, 3]);
        assert_eq!(t.len(), 6);
        assert!(t.data().iter().all(|&v| v == 0));
        let t = Tensor::from_vec(&[2, 2], vec![1, 2, 3, 4]);
        assert_eq!(t.shape(), &[2, 2]);
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn from_vec_validates() {
        let _ = Tensor::from_vec(&[2, 2], vec![1]);
    }

    #[test]
    fn indexing_3d() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        t.set3(1, 2, 3, 42);
        assert_eq!(t.at3(1, 2, 3), 42);
        assert_eq!(t.at3(0, 0, 0), 0);
    }

    #[test]
    fn argmax_first_on_ties() {
        let t = Tensor::from_vec(&[4], vec![1, 9, 9, 3]);
        assert_eq!(t.argmax(), 1);
    }
}
