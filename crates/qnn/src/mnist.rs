//! Deterministic synthetic MNIST-like digits.
//!
//! We do not ship the MNIST dataset; Table 7 measures inference time and
//! energy, which depend only on the network's compute graph, not on pixel
//! statistics. The generator rasterizes simple per-class stroke templates
//! with seeded positional jitter and noise, producing 28×28 grayscale
//! images with class-dependent structure.

use crate::tensor::Tensor;
use sim_support::{Rng, SeedableRng, StdRng};

/// Image side length (MNIST's 28).
pub const SIDE: usize = 28;

/// A deterministic synthetic digit dataset.
#[derive(Debug, Clone)]
pub struct SyntheticMnist {
    seed: u64,
}

impl SyntheticMnist {
    /// Creates a generator with a fixed seed.
    pub fn new(seed: u64) -> Self {
        SyntheticMnist { seed }
    }

    /// Generates sample `index` of class `digit` as a `[1, 28, 28]` tensor
    /// with values 0..=255.
    ///
    /// # Panics
    /// Panics if `digit > 9`.
    pub fn image(&self, digit: u8, index: u64) -> Tensor {
        assert!(digit <= 9, "digit out of range");
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ (digit as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ index,
        );
        let jx = rng.gen_range(-2i32..=2);
        let jy = rng.gen_range(-2i32..=2);
        let mut img = Tensor::zeros(&[1, SIDE, SIDE]);
        for (x0, y0, x1, y1) in strokes(digit) {
            draw_line(
                &mut img,
                (x0 as i32 + jx, y0 as i32 + jy),
                (x1 as i32 + jx, y1 as i32 + jy),
            );
        }
        // Light noise.
        for _ in 0..30 {
            let x = rng.gen_range(0..SIDE);
            let y = rng.gen_range(0..SIDE);
            let v = img.at3(0, y, x);
            img.set3(0, y, x, (v + rng.gen_range(0..60)).min(255));
        }
        img
    }

    /// Generates a batch of `count` images cycling through the ten classes.
    pub fn batch(&self, count: usize) -> Vec<(u8, Tensor)> {
        (0..count)
            .map(|i| {
                let digit = (i % 10) as u8;
                (digit, self.image(digit, i as u64))
            })
            .collect()
    }
}

/// Per-class stroke templates in a 28×28 canvas.
fn strokes(digit: u8) -> Vec<(usize, usize, usize, usize)> {
    match digit {
        0 => vec![
            (8, 6, 20, 6),
            (20, 6, 20, 22),
            (20, 22, 8, 22),
            (8, 22, 8, 6),
        ],
        1 => vec![(14, 5, 14, 23), (10, 9, 14, 5)],
        2 => vec![
            (8, 8, 20, 8),
            (20, 8, 20, 14),
            (20, 14, 8, 22),
            (8, 22, 20, 22),
        ],
        3 => vec![
            (8, 6, 20, 6),
            (20, 6, 12, 14),
            (12, 14, 20, 22),
            (20, 22, 8, 22),
        ],
        4 => vec![(10, 5, 8, 15), (8, 15, 20, 15), (17, 5, 17, 23)],
        5 => vec![
            (20, 6, 8, 6),
            (8, 6, 8, 14),
            (8, 14, 19, 14),
            (19, 14, 19, 22),
            (19, 22, 8, 22),
        ],
        6 => vec![
            (18, 5, 9, 14),
            (9, 14, 9, 22),
            (9, 22, 19, 22),
            (19, 22, 19, 15),
            (19, 15, 9, 15),
        ],
        7 => vec![(8, 6, 20, 6), (20, 6, 12, 23)],
        8 => vec![
            (9, 6, 19, 6),
            (19, 6, 19, 13),
            (19, 13, 9, 13),
            (9, 13, 9, 6),
            (9, 13, 9, 22),
            (9, 22, 19, 22),
            (19, 22, 19, 13),
        ],
        _ => vec![
            (9, 6, 19, 6),
            (19, 6, 19, 13),
            (19, 13, 9, 13),
            (9, 13, 9, 6),
            (19, 13, 16, 23),
        ],
    }
}

fn draw_line(img: &mut Tensor, (x0, y0): (i32, i32), (x1, y1): (i32, i32)) {
    // Bresenham with a soft 1-pixel halo.
    let dx = (x1 - x0).abs();
    let dy = -(y1 - y0).abs();
    let sx = if x0 < x1 { 1 } else { -1 };
    let sy = if y0 < y1 { 1 } else { -1 };
    let mut err = dx + dy;
    let (mut x, mut y) = (x0, y0);
    loop {
        stamp(img, x, y, 255);
        stamp(img, x + 1, y, 120);
        stamp(img, x, y + 1, 120);
        if x == x1 && y == y1 {
            break;
        }
        let e2 = 2 * err;
        if e2 >= dy {
            err += dy;
            x += sx;
        }
        if e2 <= dx {
            err += dx;
            y += sy;
        }
    }
}

fn stamp(img: &mut Tensor, x: i32, y: i32, v: i32) {
    if (0..SIDE as i32).contains(&x) && (0..SIDE as i32).contains(&y) {
        let cur = img.at3(0, y as usize, x as usize);
        img.set3(0, y as usize, x as usize, cur.max(v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn images_are_deterministic() {
        let g = SyntheticMnist::new(7);
        assert_eq!(g.image(3, 0).data(), g.image(3, 0).data());
        assert_ne!(g.image(3, 0).data(), g.image(3, 1).data());
    }

    #[test]
    fn classes_are_structurally_distinct() {
        let g = SyntheticMnist::new(1);
        let a = g.image(0, 0);
        let b = g.image(1, 0);
        let diff = a
            .data()
            .iter()
            .zip(b.data())
            .filter(|(x, y)| x != y)
            .count();
        assert!(diff > 50, "digits 0 and 1 should differ substantially");
    }

    #[test]
    fn values_in_byte_range() {
        let g = SyntheticMnist::new(2);
        for d in 0..10u8 {
            let img = g.image(d, 5);
            assert!(
                img.data().iter().all(|&v| (0..=255).contains(&v)),
                "digit {d}"
            );
            assert!(img.data().iter().any(|&v| v > 0), "digit {d} not blank");
        }
    }

    #[test]
    fn batch_cycles_classes() {
        let g = SyntheticMnist::new(3);
        let batch = g.batch(25);
        assert_eq!(batch.len(), 25);
        assert_eq!(batch[0].0, 0);
        assert_eq!(batch[13].0, 3);
    }
}
