//! Quantized LeNet-5 (paper §9: 1-bit and 4-bit variants, after LeCun et
//! al. and the quantization scheme of Hubara/Khoram-Li).
//!
//! Topology (28×28 input, `same`-padded first conv as in the classic MNIST
//! variant):
//!
//! ```text
//! conv1: 6 @ 5×5  → 24×24 → avgpool 2×2 → 12×12
//! conv2: 16 @ 5×5 → 8×8   → avgpool 2×2 → 4×4
//! fc1: 256 → 120, fc2: 120 → 84, fc3: 84 → 10
//! ```
//!
//! Quantization: weights and activations are symmetric integers —
//! 1-bit = {−1, +1} (binarised, XNOR-popcount-compatible), 4-bit =
//! {−8 … 7}. Weights are deterministic (seeded), standing in for a trained
//! checkpoint: Table 7 measures time/energy, which depend only on the
//! compute graph (`DESIGN.md` §1).

use crate::tensor::Tensor;
use sim_support::{Rng, SeedableRng, StdRng};

/// Quantization precision of weights and activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Binarised network: values in {−1, +1}.
    Bit1,
    /// 4-bit network: values in {−8, …, 7}.
    Bit4,
}

impl Precision {
    /// Quantizes an integer to the representable set.
    pub fn quantize(self, v: i32) -> i32 {
        match self {
            Precision::Bit1 => {
                if v >= 0 {
                    1
                } else {
                    -1
                }
            }
            Precision::Bit4 => v.clamp(-8, 7),
        }
    }

    /// Bits per value.
    pub fn bits(self) -> u32 {
        match self {
            Precision::Bit1 => 1,
            Precision::Bit4 => 4,
        }
    }
}

/// One convolution layer's weights: `[out_ch][in_ch][k][k]`.
#[derive(Debug, Clone)]
pub struct ConvLayer {
    /// Output channels.
    pub out_ch: usize,
    /// Input channels.
    pub in_ch: usize,
    /// Kernel side.
    pub k: usize,
    /// Flattened weights.
    pub weights: Vec<i32>,
}

/// One fully connected layer's weights: `[out][in]`.
#[derive(Debug, Clone)]
pub struct FcLayer {
    /// Output features.
    pub out: usize,
    /// Input features.
    pub input: usize,
    /// Flattened weights.
    pub weights: Vec<i32>,
}

/// The quantized LeNet-5 network.
#[derive(Debug, Clone)]
pub struct LeNet5 {
    /// Precision of weights and activations.
    pub precision: Precision,
    /// conv1: 6 @ 5×5 over 1 channel.
    pub conv1: ConvLayer,
    /// conv2: 16 @ 5×5 over 6 channels.
    pub conv2: ConvLayer,
    /// fc1: 256 → 120.
    pub fc1: FcLayer,
    /// fc2: 120 → 84.
    pub fc2: FcLayer,
    /// fc3: 84 → 10.
    pub fc3: FcLayer,
}

fn gen_weights(rng: &mut StdRng, n: usize, precision: Precision) -> Vec<i32> {
    (0..n)
        .map(|_| match precision {
            Precision::Bit1 => {
                if rng.gen::<bool>() {
                    1
                } else {
                    -1
                }
            }
            Precision::Bit4 => rng.gen_range(-8..=7),
        })
        .collect()
}

impl LeNet5 {
    /// Builds the network with deterministic seeded weights.
    pub fn new(precision: Precision, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        LeNet5 {
            precision,
            conv1: ConvLayer {
                out_ch: 6,
                in_ch: 1,
                k: 5,
                weights: gen_weights(&mut rng, 6 * 5 * 5, precision),
            },
            conv2: ConvLayer {
                out_ch: 16,
                in_ch: 6,
                k: 5,
                weights: gen_weights(&mut rng, 16 * 6 * 5 * 5, precision),
            },
            fc1: FcLayer {
                out: 120,
                input: 256,
                weights: gen_weights(&mut rng, 120 * 256, precision),
            },
            fc2: FcLayer {
                out: 84,
                input: 120,
                weights: gen_weights(&mut rng, 84 * 120, precision),
            },
            fc3: FcLayer {
                out: 10,
                input: 84,
                weights: gen_weights(&mut rng, 10 * 84, precision),
            },
        }
    }

    /// Quantizes a raw 0..=255 image into the activation set.
    pub fn quantize_input(&self, img: &Tensor) -> Tensor {
        let data = img
            .data()
            .iter()
            .map(|&v| self.precision.quantize((v - 128) / 16))
            .collect();
        Tensor::from_vec(img.shape(), data)
    }

    /// Runs inference, returning the 10 class logits.
    ///
    /// # Panics
    /// Panics if the input is not `[1, 28, 28]`.
    pub fn infer(&self, img: &Tensor) -> Tensor {
        assert_eq!(img.shape(), &[1, 28, 28], "LeNet-5 expects [1,28,28]");
        let x = self.quantize_input(img);
        let x = conv_valid(&x, &self.conv1, self.precision); // 6×24×24
        let x = avgpool2(&x, self.precision); // 6×12×12
        let x = conv_valid(&x, &self.conv2, self.precision); // 16×8×8
        let x = avgpool2(&x, self.precision); // 16×4×4
        let flat: Vec<i32> = x.data().to_vec();
        let x = fc(&flat, &self.fc1, self.precision, true);
        let x = fc(&x, &self.fc2, self.precision, true);
        let logits = fc(&x, &self.fc3, self.precision, false);
        Tensor::from_vec(&[10], logits)
    }

    /// Classifies an image (argmax over logits).
    pub fn classify(&self, img: &Tensor) -> usize {
        self.infer(img).argmax()
    }

    /// Multiply–accumulate counts per layer, used by the Table 7 cost
    /// model: (conv MACs, fc MACs).
    pub fn mac_counts(&self) -> (u64, u64) {
        let conv1 = 6u64 * 24 * 24 * (5 * 5);
        let conv2 = 16u64 * 8 * 8 * (6 * 5 * 5);
        let fc = (120u64 * 256) + (84 * 120) + (10 * 84);
        (conv1 + conv2, fc)
    }
}

fn conv_valid(x: &Tensor, layer: &ConvLayer, precision: Precision) -> Tensor {
    let (in_ch, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    assert_eq!(in_ch, layer.in_ch);
    let oh = h - layer.k + 1;
    let ow = w - layer.k + 1;
    let mut out = Tensor::zeros(&[layer.out_ch, oh, ow]);
    for oc in 0..layer.out_ch {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0i32;
                for ic in 0..in_ch {
                    for ky in 0..layer.k {
                        for kx in 0..layer.k {
                            let wgt =
                                layer.weights[((oc * in_ch + ic) * layer.k + ky) * layer.k + kx];
                            acc += wgt * x.at3(ic, oy + ky, ox + kx);
                        }
                    }
                }
                // Re-quantize the activation (scale chosen per precision).
                let scaled = match precision {
                    Precision::Bit1 => acc,
                    Precision::Bit4 => acc / 16,
                };
                out.set3(oc, oy, ox, precision.quantize(scaled));
            }
        }
    }
    out
}

fn avgpool2(x: &Tensor, precision: Precision) -> Tensor {
    let (c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let mut out = Tensor::zeros(&[c, h / 2, w / 2]);
    for ch in 0..c {
        for y in 0..h / 2 {
            for xx in 0..w / 2 {
                let s = x.at3(ch, 2 * y, 2 * xx)
                    + x.at3(ch, 2 * y, 2 * xx + 1)
                    + x.at3(ch, 2 * y + 1, 2 * xx)
                    + x.at3(ch, 2 * y + 1, 2 * xx + 1);
                out.set3(ch, y, xx, precision.quantize(s / 4));
            }
        }
    }
    out
}

fn fc(x: &[i32], layer: &FcLayer, precision: Precision, activate: bool) -> Vec<i32> {
    assert_eq!(x.len(), layer.input, "fc input size");
    (0..layer.out)
        .map(|o| {
            let acc: i32 = (0..layer.input)
                .map(|i| layer.weights[o * layer.input + i] * x[i])
                .sum();
            if activate {
                let scaled = match precision {
                    Precision::Bit1 => acc,
                    Precision::Bit4 => acc / 32,
                };
                precision.quantize(scaled)
            } else {
                acc
            }
        })
        .collect()
}

/// Reference binary dot product used to validate the pLUTo XNOR-popcount
/// kernel: operands in {−1,+1} encoded as bits (1 ⇔ +1),
/// `dot = 2·popcount(XNOR(a,b)) − n`.
pub fn binary_dot_reference(a_bits: &[u8], b_bits: &[u8]) -> i32 {
    assert_eq!(a_bits.len(), b_bits.len());
    let same = a_bits.iter().zip(b_bits).filter(|(&x, &y)| x == y).count() as i32;
    2 * same - a_bits.len() as i32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mnist::SyntheticMnist;

    #[test]
    fn inference_shapes_and_determinism() {
        for precision in [Precision::Bit1, Precision::Bit4] {
            let net = LeNet5::new(precision, 42);
            let img = SyntheticMnist::new(1).image(3, 0);
            let logits = net.infer(&img);
            assert_eq!(logits.shape(), &[10]);
            assert_eq!(logits.data(), net.infer(&img).data(), "deterministic");
        }
    }

    #[test]
    fn different_inputs_give_different_logits() {
        let net = LeNet5::new(Precision::Bit4, 42);
        let g = SyntheticMnist::new(1);
        let a = net.infer(&g.image(0, 0));
        let b = net.infer(&g.image(7, 0));
        assert_ne!(a.data(), b.data());
    }

    #[test]
    fn binary_activations_stay_binary() {
        let net = LeNet5::new(Precision::Bit1, 7);
        let img = SyntheticMnist::new(2).image(5, 1);
        let x = net.quantize_input(&img);
        assert!(x.data().iter().all(|&v| v == 1 || v == -1));
        let c = conv_valid(&x, &net.conv1, Precision::Bit1);
        assert!(c.data().iter().all(|&v| v == 1 || v == -1));
    }

    #[test]
    fn four_bit_activations_bounded() {
        let net = LeNet5::new(Precision::Bit4, 7);
        let img = SyntheticMnist::new(2).image(5, 1);
        let x = net.quantize_input(&img);
        let c = conv_valid(&x, &net.conv1, Precision::Bit4);
        assert!(c.data().iter().all(|&v| (-8..=7).contains(&v)));
    }

    #[test]
    fn mac_counts_match_topology() {
        let net = LeNet5::new(Precision::Bit1, 0);
        let (conv, fc) = net.mac_counts();
        assert_eq!(conv, 6 * 24 * 24 * 25 + 16 * 8 * 8 * 150);
        assert_eq!(fc, 120 * 256 + 84 * 120 + 10 * 84);
    }

    #[test]
    fn binary_dot_identity() {
        // dot(x, x) = n; dot(x, !x) = -n.
        let a = vec![1u8, 0, 1, 1, 0, 0, 1, 0];
        let na: Vec<u8> = a.iter().map(|&b| 1 - b).collect();
        assert_eq!(binary_dot_reference(&a, &a), 8);
        assert_eq!(binary_dot_reference(&a, &na), -8);
    }

    #[test]
    fn classification_is_stable() {
        let net = LeNet5::new(Precision::Bit4, 42);
        let g = SyntheticMnist::new(9);
        let c1 = net.classify(&g.image(2, 0));
        let c2 = net.classify(&g.image(2, 0));
        assert_eq!(c1, c2);
        assert!(c1 < 10);
    }
}
