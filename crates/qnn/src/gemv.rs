//! GEMV-by-LUT: lowering quantized matrix–vector products onto bulk
//! LUT queries (the paper's "massively parallel lookup" substrate put
//! to work as an inference kernel).
//!
//! A [`QuantLinear`] layer holds an `out × in` matrix of signed
//! fixed-width integer weights. Its forward pass multiplies every
//! (weight, activation) pair in DRAM and accumulates on the host — the
//! PnM-core role from the paper's system model. Two lowerings of the
//! multiply are provided, the LoCalut capacity–computation axis made
//! explicit:
//!
//! - [`GemvPath::Direct`] — one query per MAC against a signed
//!   direct-product table ([`smul_lut`]). At 8-bit operands that table
//!   is 65 536 entries — `MulDirect8`-scale — and spills across 128
//!   §5.6 segments of a partitioned [`pluto_core::partition::PlutoStore`].
//!   Latency-optimal (a partitioned query keeps single-query latency),
//!   capacity- and energy-hungry (every segment pays the sweep).
//! - [`GemvPath::NibblePlane`] — the `Mul8` contrast: operands split
//!   into 4-bit limb planes, one `mul4` query stream per limb pair
//!   (four streams at 8 bits), host shift-add plus a host sign
//!   correction. One 256-entry table serves every width; computation
//!   (query count) buys back capacity.
//!
//! Both paths are bit-identical to the host `i32` oracle
//! ([`QuantLinear::forward_reference`]) by construction, which is what
//! the differential suites pin.

use pluto_core::lut::{catalog, width_mask};
use pluto_core::{Lut, PlutoError, PlutoMachine};
use sim_support::{Rng, StdRng};
use std::ops::Range;

/// Smallest representable value of a signed `width`-bit operand.
#[must_use]
pub fn signed_min(width: u32) -> i32 {
    -(1i32 << (width - 1))
}

/// Largest representable value of a signed `width`-bit operand.
#[must_use]
pub fn signed_max(width: u32) -> i32 {
    (1i32 << (width - 1)) - 1
}

/// Encodes a signed value into a `width`-bit two's-complement field
/// (the raw LUT index / slot representation).
///
/// # Panics
/// If `v` does not fit the signed `width`-bit range.
#[must_use]
pub fn to_field(v: i32, width: u32) -> u64 {
    assert!(
        (signed_min(width)..=signed_max(width)).contains(&v),
        "{v} does not fit a signed {width}-bit field"
    );
    (v as i64 as u64) & width_mask(width)
}

/// Decodes a `width`-bit two's-complement field back to a signed value.
#[must_use]
pub fn to_signed(u: u64, width: u32) -> i32 {
    let m = 1u64 << (width - 1);
    ((u & width_mask(width)) ^ m).wrapping_sub(m) as i64 as i32
}

/// The signed direct-product table: input `2·width` bits (two packed
/// two's-complement operands), output `2·width` bits (their signed
/// product, two's-complement). At `width = 8` this is the 65 536-entry
/// `MulDirect8`-style table that partitions across 128 subarray
/// segments; at `width = 4` it fits a single subarray.
///
/// # Errors
/// Propagates [`Lut::from_fn`] shape errors.
pub fn smul_lut(width: u32) -> Result<Lut, PlutoError> {
    assert!((1..=8).contains(&width), "operand width must be 1..=8");
    Lut::from_fn(format!("smul{width}"), 2 * width, 2 * width, move |x| {
        let a = to_signed(x >> width, width);
        let b = to_signed(x & width_mask(width), width);
        to_field(a * b, 2 * width)
    })
}

/// Which multiply lowering a GEMV runs on (the LoCalut tradeoff axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GemvPath {
    /// One direct signed-product query per MAC (capacity for latency).
    Direct,
    /// 4-bit limb-plane `mul4` queries + host shift-add and sign fixup
    /// (computation for capacity).
    NibblePlane,
}

impl GemvPath {
    /// Both lowerings, in sweep order.
    pub const ALL: [GemvPath; 2] = [GemvPath::Direct, GemvPath::NibblePlane];

    /// 4-bit limb planes per operand at this width (1 or 2).
    #[must_use]
    pub fn limbs(width: u32) -> u32 {
        width.div_ceil(4)
    }

    /// Bulk LUT lookups issued per MAC on this path.
    #[must_use]
    pub fn lookups_per_mac(self, width: u32) -> u64 {
        match self {
            GemvPath::Direct => 1,
            GemvPath::NibblePlane => u64::from(Self::limbs(width)) * u64::from(Self::limbs(width)),
        }
    }
}

impl std::fmt::Display for GemvPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GemvPath::Direct => write!(f, "direct"),
            GemvPath::NibblePlane => write!(f, "nibble"),
        }
    }
}

/// A quantized linear (fully connected) layer: `out_features ×
/// in_features` signed `width`-bit weights, row-major by output neuron.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantLinear {
    name: String,
    out_features: usize,
    in_features: usize,
    width: u32,
    weights: Vec<i32>,
}

impl QuantLinear {
    /// Builds a layer from explicit weights (row-major, `out × in`).
    ///
    /// # Panics
    /// If the weight count or any weight's range disagrees with the
    /// declared shape/width.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        out_features: usize,
        in_features: usize,
        width: u32,
        weights: Vec<i32>,
    ) -> Self {
        assert!((1..=8).contains(&width), "operand width must be 1..=8");
        assert!(out_features > 0 && in_features > 0, "degenerate shape");
        assert_eq!(weights.len(), out_features * in_features, "weight count");
        let (lo, hi) = (signed_min(width), signed_max(width));
        assert!(
            weights.iter().all(|w| (lo..=hi).contains(w)),
            "weights must fit signed {width}-bit operands"
        );
        QuantLinear {
            name: name.into(),
            out_features,
            in_features,
            width,
            weights,
        }
    }

    /// Builds a layer with seeded random weights drawn from
    /// `lo..=hi` (which must fit the operand width).
    #[must_use]
    pub fn seeded(
        name: impl Into<String>,
        out_features: usize,
        in_features: usize,
        width: u32,
        range: std::ops::RangeInclusive<i32>,
        rng: &mut StdRng,
    ) -> Self {
        let weights = (0..out_features * in_features)
            .map(|_| rng.gen_range(range.clone()))
            .collect();
        QuantLinear::new(name, out_features, in_features, width, weights)
    }

    /// Layer name (also names the LUTs it queries).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Output neuron count.
    #[must_use]
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Input activation count.
    #[must_use]
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Operand width in bits (weights and activations).
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The weight row feeding output neuron `o`.
    #[must_use]
    pub fn row(&self, o: usize) -> &[i32] {
        &self.weights[o * self.in_features..(o + 1) * self.in_features]
    }

    /// Multiply–accumulate count of the full layer.
    #[must_use]
    pub fn mac_count(&self) -> u64 {
        (self.out_features * self.in_features) as u64
    }

    /// Bulk LUT lookups a full forward pass issues on `path`.
    #[must_use]
    pub fn lut_lookups(&self, path: GemvPath) -> u64 {
        self.mac_count() * path.lookups_per_mac(self.width)
    }

    /// Host `i32` oracle: raw accumulators for every output neuron.
    ///
    /// # Panics
    /// If `x` disagrees with `in_features` or exceeds the operand range.
    #[must_use]
    pub fn forward_reference(&self, x: &[i32]) -> Vec<i32> {
        self.forward_rows_reference(x, 0..self.out_features)
    }

    /// Host `i32` oracle restricted to one output-neuron tile.
    #[must_use]
    pub fn forward_rows_reference(&self, x: &[i32], rows: Range<usize>) -> Vec<i32> {
        self.check_input(x);
        rows.map(|o| self.row(o).iter().zip(x).map(|(&w, &v)| w * v).sum())
            .collect()
    }

    /// Full forward pass on a machine: every MAC's multiply runs as a
    /// LUT query, accumulation is host-side.
    ///
    /// # Errors
    /// Propagates machine errors.
    pub fn forward_on(
        &self,
        m: &mut PlutoMachine,
        x: &[i32],
        path: GemvPath,
    ) -> Result<Vec<i32>, PlutoError> {
        self.forward_rows_on(m, x, path, 0..self.out_features)
    }

    /// Forward pass restricted to one output-neuron tile (the cluster
    /// shard unit): weight rows `rows` only, in row order.
    ///
    /// # Errors
    /// Propagates machine errors.
    ///
    /// # Panics
    /// If `x` or `rows` disagrees with the layer shape.
    pub fn forward_rows_on(
        &self,
        m: &mut PlutoMachine,
        x: &[i32],
        path: GemvPath,
        rows: Range<usize>,
    ) -> Result<Vec<i32>, PlutoError> {
        self.check_input(x);
        assert!(rows.end <= self.out_features, "tile out of range");
        let w = self.width;
        let xf: Vec<u64> = x.iter().map(|&v| to_field(v, w)).collect();
        let mut wf = Vec::with_capacity(rows.len() * self.in_features);
        let mut af = Vec::with_capacity(rows.len() * self.in_features);
        for o in rows {
            wf.extend(self.row(o).iter().map(|&v| to_field(v, w)));
            af.extend_from_slice(&xf);
        }
        let products = match path {
            GemvPath::Direct => {
                // One bulk apply2 stream over the whole tile: the §5.6
                // store answers every pair, host decodes signed products.
                let lut = smul_lut(w)?;
                m.apply2(&lut, &wf, w, &af, w)?
                    .values
                    .into_iter()
                    .map(|p| i64::from(to_signed(p, 2 * w)))
                    .collect::<Vec<i64>>()
            }
            GemvPath::NibblePlane => self.nibble_products(m, &wf, &af)?,
        };
        Ok(products
            .chunks(self.in_features)
            .map(|c| c.iter().sum::<i64>() as i32)
            .collect())
    }

    /// The capacity-thrifty lowering: unsigned limb products from the
    /// shared 256-entry `mul4` table, host shift-add, then the host sign
    /// correction `a·b = uₐ·u_b − 2ʷ(negₐ·u_b + neg_b·uₐ) + 2²ʷ·negₐ·neg_b`
    /// (operands are host-known, so the fixup stays PnM-core work).
    fn nibble_products(
        &self,
        m: &mut PlutoMachine,
        wf: &[u64],
        af: &[u64],
    ) -> Result<Vec<i64>, PlutoError> {
        let w = self.width;
        let limbs = GemvPath::limbs(w);
        let mul4 = catalog::mul(4)?;
        let mut unsigned = vec![0i64; wf.len()];
        for la in 0..limbs {
            for lb in 0..limbs {
                let pa: Vec<u64> = wf.iter().map(|&u| (u >> (4 * la)) & 0xF).collect();
                let pb: Vec<u64> = af.iter().map(|&u| (u >> (4 * lb)) & 0xF).collect();
                let partial = m.apply2(&mul4, &pa, 4, &pb, 4)?.values;
                for (acc, &p) in unsigned.iter_mut().zip(&partial) {
                    *acc += (p as i64) << (4 * (la + lb));
                }
            }
        }
        Ok(unsigned
            .iter()
            .zip(wf.iter().zip(af))
            .map(|(&u, (&ua, &ub))| {
                let neg_a = ((ua >> (w - 1)) & 1) as i64;
                let neg_b = ((ub >> (w - 1)) & 1) as i64;
                u - ((neg_a * ub as i64 + neg_b * ua as i64) << w) + ((neg_a & neg_b) << (2 * w))
            })
            .collect())
    }

    fn check_input(&self, x: &[i32]) {
        assert_eq!(x.len(), self.in_features, "activation count");
        let (lo, hi) = (signed_min(self.width), signed_max(self.width));
        assert!(
            x.iter().all(|v| (lo..=hi).contains(v)),
            "activations must fit signed {}-bit operands",
            self.width
        );
    }
}
