//! The Table 7 comparison: LeNet-5 inference time and energy on CPU, GPU
//! (Tesla P100), FPGA (ZCU102), and pLUTo-BSA.
//!
//! [`published`] returns the paper's Table 7 values verbatim; the figure
//! harness prints them next to this reproduction's modeled estimates
//! ([`modeled`]), which combine the network's MAC counts with the baseline
//! roofline models and the pLUTo query-count model of
//! [`crate::pluto_exec`].

use crate::lenet::{LeNet5, Precision};
use crate::pluto_exec;
use pluto_baselines::Machine;
use pluto_core::DesignKind;
use std::fmt;

/// The four Table 7 platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// Intel Xeon Gold 5118.
    Cpu,
    /// NVIDIA Tesla P100.
    Gpu,
    /// Xilinx ZCU102.
    Fpga,
    /// pLUTo-BSA (DDR4, 16-subarray parallelism).
    PlutoBsa,
}

impl Platform {
    /// All platforms in table order.
    pub const ALL: [Platform; 4] = [
        Platform::Cpu,
        Platform::Gpu,
        Platform::Fpga,
        Platform::PlutoBsa,
    ];
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Platform::Cpu => write!(f, "CPU"),
            Platform::Gpu => write!(f, "GPU (P100)"),
            Platform::Fpga => write!(f, "FPGA"),
            Platform::PlutoBsa => write!(f, "pLUTo-BSA"),
        }
    }
}

/// Inference time and energy for one precision on one platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceCost {
    /// Time per inference in microseconds.
    pub time_us: f64,
    /// Energy per inference in millijoules.
    pub energy_mj: f64,
}

/// The paper's published Table 7 values.
pub fn published(platform: Platform, precision: Precision) -> InferenceCost {
    match (platform, precision) {
        (Platform::Cpu, Precision::Bit1) => InferenceCost {
            time_us: 249.0,
            energy_mj: 2.2,
        },
        (Platform::Cpu, Precision::Bit4) => InferenceCost {
            time_us: 997.0,
            energy_mj: 8.7,
        },
        (Platform::Gpu, Precision::Bit1) => InferenceCost {
            time_us: 56.0,
            energy_mj: 1.6,
        },
        (Platform::Gpu, Precision::Bit4) => InferenceCost {
            time_us: 224.0,
            energy_mj: 6.5,
        },
        (Platform::Fpga, Precision::Bit1) => InferenceCost {
            time_us: 141.0,
            energy_mj: 0.3,
        },
        (Platform::Fpga, Precision::Bit4) => InferenceCost {
            time_us: 563.0,
            energy_mj: 1.3,
        },
        (Platform::PlutoBsa, Precision::Bit1) => InferenceCost {
            time_us: 23.0,
            energy_mj: 0.02,
        },
        (Platform::PlutoBsa, Precision::Bit4) => InferenceCost {
            time_us: 30.0,
            energy_mj: 0.08,
        },
    }
}

/// Published classification accuracy of the quantized networks (Table 7,
/// from Khoram & Li): 97.4 % at 1 bit, 99.1 % at 4 bits.
pub fn published_accuracy_percent(precision: Precision) -> f64 {
    match precision {
        Precision::Bit1 => 97.4,
        Precision::Bit4 => 99.1,
    }
}

/// This reproduction's modeled estimate of one platform's inference cost.
///
/// The baseline models are MAC-count rooflines whose per-MAC throughput
/// and effective busy power are anchored to the paper's measured Table 7
/// points (we cannot re-measure the authors' hardware — `DESIGN.md` §1);
/// the pLUTo estimate comes from this reproduction's own query-count and
/// Table 1 cost models, so the comparison tests something real: whether an
/// independently derived pLUTo cost stays in the published regime and
/// preserves every ordering.
pub fn modeled(platform: Platform, precision: Precision) -> InferenceCost {
    let net = LeNet5::new(precision, 42);
    let (conv_macs, fc_macs) = net.mac_counts();
    let macs = (conv_macs + fc_macs) as f64;
    match platform {
        Platform::PlutoBsa => {
            let (t, e) = pluto_exec::pluto_inference_cost(&net, DesignKind::Bsa);
            InferenceCost {
                time_us: t.as_us(),
                energy_mj: e.as_mj(),
            }
        }
        Platform::Cpu => {
            // Quantized MACs on one SSE core: ≈ 2 cycles/MAC at 1 bit
            // (XNOR-popcount tricks), ≈ 8 cycles/MAC at 4 bits (unpack,
            // multiply, re-quantize) — anchored to the measured 249/997 µs.
            let m = Machine::xeon_gold_5118();
            let cycles = match precision {
                Precision::Bit1 => 2.0,
                Precision::Bit4 => 8.0,
            };
            let secs = macs * cycles / m.freq_hz;
            // Single-core busy power ≈ 8.8 W of the 105 W package.
            InferenceCost {
                time_us: secs * 1e6,
                energy_mj: secs * 8.8 * 1e3,
            }
        }
        Platform::Gpu => {
            // Batch-1 inference on the P100 is kernel-launch-bound; the
            // measured floors are ≈ 55 µs (1-bit) and ≈ 220 µs (4-bit,
            // extra dequantize kernels), with negligible compute on top.
            let m = Machine::tesla_p100();
            let floor = match precision {
                Precision::Bit1 => 55e-6,
                Precision::Bit4 => 220e-6,
            };
            let secs = floor + macs / (m.freq_hz * m.lanes);
            // Effective batch-1 busy power ≈ 29 W of the 300 W board.
            InferenceCost {
                time_us: secs * 1e6,
                energy_mj: secs * 29.0 * 1e3,
            }
        }
        Platform::Fpga => {
            // The paper's HLS pipelines sustain ≈ 6.7 (1-bit) / ≈ 1.67
            // (4-bit) MACs per 300 MHz cycle at ≈ 2.3 W accelerator power.
            let m = Machine::zcu102();
            let per_cycle = match precision {
                Precision::Bit1 => 6.7,
                Precision::Bit4 => 1.67,
            };
            let secs = macs / (per_cycle * m.freq_hz);
            InferenceCost {
                time_us: secs * 1e6,
                energy_mj: secs * 2.3 * 1e3,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_matches_paper_rows() {
        let p = published(Platform::PlutoBsa, Precision::Bit1);
        assert_eq!(p.time_us, 23.0);
        assert_eq!(p.energy_mj, 0.02);
        assert_eq!(published(Platform::Cpu, Precision::Bit4).time_us, 997.0);
        assert_eq!(published_accuracy_percent(Precision::Bit4), 99.1);
    }

    #[test]
    fn published_speedups_match_paper_text() {
        // §9: pLUTo-BSA outperforms the CPU (10×, 30×), the GPU (2×, 7×)
        // and the FPGA (6×, 19×) for 1-/4-bit inference.
        let s = |p: Platform, q: Precision| {
            published(p, q).time_us / published(Platform::PlutoBsa, q).time_us
        };
        assert!((s(Platform::Cpu, Precision::Bit1) - 10.8).abs() < 1.0);
        assert!((s(Platform::Cpu, Precision::Bit4) - 33.2).abs() < 4.0);
        assert!((s(Platform::Gpu, Precision::Bit1) - 2.4).abs() < 0.6);
        assert!((s(Platform::Fpga, Precision::Bit1) - 6.1).abs() < 0.5);
    }

    #[test]
    fn modeled_preserves_the_orderings() {
        for precision in [Precision::Bit1, Precision::Bit4] {
            let pluto = modeled(Platform::PlutoBsa, precision);
            for p in [Platform::Cpu, Platform::Gpu, Platform::Fpga] {
                let other = modeled(p, precision);
                assert!(
                    pluto.time_us < other.time_us,
                    "{p} faster than pLUTo at {precision:?}: {other:?} vs {pluto:?}"
                );
                assert!(
                    pluto.energy_mj < other.energy_mj,
                    "{p} more efficient than pLUTo at {precision:?}"
                );
            }
        }
    }

    #[test]
    fn modeled_pluto_in_published_regime() {
        // Tens of microseconds, sub-0.1 mJ — the Table 7 regime.
        let c = modeled(Platform::PlutoBsa, Precision::Bit1);
        assert!(c.time_us > 1.0 && c.time_us < 500.0, "{c:?}");
        assert!(c.energy_mj < 1.0, "{c:?}");
    }
}
