//! Monte Carlo process-variation study (paper §8.1, Figure 6).
//!
//! The paper conducts 100 LTSpice Monte Carlo runs with 5 % process
//! variation and reports that none of the three pLUTo designs introduces
//! errors, and that observed disturbances stay at ≈ 0.9 % of the reference
//! voltage. This module reproduces that experiment: each run perturbs
//! C_cell, C_bl, R_on, and the sense-amplifier offset with Gaussian noise
//! and simulates the activation transient.

use crate::circuit::{simulate_activation, ActivationScenario, Transient};
use crate::params::{CircuitParams, DesignVariant};
use sim_support::{Rng, SeedableRng, StdRng};

/// Configuration of a Monte Carlo sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarlo {
    /// Number of runs (the paper uses 100).
    pub runs: usize,
    /// Relative standard deviation of the process parameters (the paper
    /// assumes 5 %).
    pub sigma: f64,
    /// RNG seed — fixed for reproducibility.
    pub seed: u64,
}

impl Default for MonteCarlo {
    fn default() -> Self {
        MonteCarlo {
            runs: 100,
            sigma: 0.05,
            seed: 0x9E3779B97F4A7C15,
        }
    }
}

/// Aggregate results of a Monte Carlo sweep for one design.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloSummary {
    /// Simulated design.
    pub variant: DesignVariant,
    /// Number of runs.
    pub runs: usize,
    /// Runs whose sense amplifier resolved the stored value correctly.
    pub correct: usize,
    /// Mean final bitline voltage (volts).
    pub mean_final: f64,
    /// Standard deviation of the final bitline voltage (volts).
    pub std_final: f64,
    /// Mean latch time (seconds) across runs that latched.
    pub mean_latch_time: f64,
    /// Worst-case disturbance observed on unmatched GMC bitlines, as a
    /// fraction of VDD (only populated for GMC; 0 otherwise).
    pub max_unmatched_disturbance: f64,
}

impl MonteCarloSummary {
    /// Whether every run sensed correctly (the paper's reliability claim).
    pub fn all_correct(&self) -> bool {
        self.correct == self.runs
    }
}

impl MonteCarlo {
    /// Draws a perturbed copy of `nominal` using Box–Muller Gaussian noise.
    fn perturb(&self, nominal: &CircuitParams, rng: &mut StdRng) -> CircuitParams {
        let mut gauss = |sigma: f64| -> f64 {
            // Box–Muller transform over sim-support's uniform primitives.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos() * sigma
        };
        let mut p = nominal.clone();
        p.c_cell *= 1.0 + gauss(self.sigma);
        p.c_bl *= 1.0 + gauss(self.sigma);
        p.r_on *= 1.0 + gauss(self.sigma);
        p.r_switch *= 1.0 + gauss(self.sigma);
        // SA offset: σ scaled to the charge-share swing (threshold mismatch).
        p.sa_offset = gauss(self.sigma) * nominal.charge_share_delta() * 0.5;
        p
    }

    /// Runs the sweep for one design and scenario, returning all transients.
    pub fn run(
        &self,
        nominal: &CircuitParams,
        variant: DesignVariant,
        scenario: ActivationScenario,
    ) -> Vec<Transient> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ variant_seed(variant));
        (0..self.runs)
            .map(|_| {
                let p = self.perturb(nominal, &mut rng);
                let mut s = scenario;
                // GSA operates on unprecharged bitlines during a sweep:
                // model residue noise proportional to δ (paper §8.1 notes
                // GSA's activation is the noisiest for this reason).
                if variant == DesignVariant::Gsa {
                    let u: f64 = rng.gen_range(-1.0..1.0);
                    s.bitline_residue += u * 0.3 * nominal.charge_share_delta();
                }
                simulate_activation(&p, variant, s)
            })
            .collect()
    }

    /// Runs the sweep and reduces it to summary statistics.
    pub fn summarize(
        &self,
        nominal: &CircuitParams,
        variant: DesignVariant,
        scenario: ActivationScenario,
    ) -> MonteCarloSummary {
        let transients = self.run(nominal, variant, scenario);
        let vdd = nominal.vdd;
        let finals: Vec<f64> = transients.iter().map(|t| t.final_bitline()).collect();
        let mean = finals.iter().sum::<f64>() / finals.len() as f64;
        let var = finals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / finals.len() as f64;
        let latch: Vec<f64> = transients
            .iter()
            .filter_map(|t| t.latch_time(vdd))
            .collect();
        let mean_latch = if latch.is_empty() {
            f64::NAN
        } else {
            latch.iter().sum::<f64>() / latch.len() as f64
        };
        let max_unmatched = if variant == DesignVariant::Gmc && !scenario.matchline {
            transients
                .iter()
                .map(|t| t.max_disturbance(vdd) / vdd)
                .fold(0.0, f64::max)
        } else {
            0.0
        };
        MonteCarloSummary {
            variant,
            runs: transients.len(),
            correct: transients
                .iter()
                .filter(|t| t.sensed_correctly(vdd))
                .count(),
            mean_final: mean,
            std_final: var.sqrt(),
            mean_latch_time: mean_latch,
            max_unmatched_disturbance: max_unmatched,
        }
    }
}

fn variant_seed(v: DesignVariant) -> u64 {
    match v {
        DesignVariant::Baseline => 0x1,
        DesignVariant::Bsa => 0x2,
        DesignVariant::Gsa => 0x3,
        DesignVariant::Gmc => 0x4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_params() -> CircuitParams {
        // Coarser time step keeps the 100-run sweeps fast in tests; the
        // dynamics time constants are ≥ 2.5 ns so 50 ps is still ≫ resolved.
        CircuitParams {
            dt: 50e-12,
            ..CircuitParams::lp22nm()
        }
    }

    #[test]
    fn hundred_runs_all_sense_correctly_every_design() {
        // The paper's headline §8.1 result.
        let mc = MonteCarlo::default();
        let p = fast_params();
        for variant in DesignVariant::ALL {
            for scenario in [
                ActivationScenario::matched_one(),
                ActivationScenario::matched_zero(),
            ] {
                let s = mc.summarize(&p, variant, scenario);
                assert!(
                    s.all_correct(),
                    "{variant}: {}/{} correct for {:?}",
                    s.correct,
                    s.runs,
                    scenario.cell_value
                );
            }
        }
    }

    #[test]
    fn gsa_is_noisiest_design() {
        // Paper §8.1: "the activation procedure is the noisiest for
        // pLUTo-GSA". Compare latch-time spread via final-voltage std of the
        // *pre-latch* trajectory — we proxy with latch time variance.
        let mc = MonteCarlo::default();
        let p = fast_params();
        let spread = |variant| {
            let runs = mc.run(&p, variant, ActivationScenario::matched_one());
            let times: Vec<f64> = runs.iter().filter_map(|t| t.latch_time(p.vdd)).collect();
            let mean = times.iter().sum::<f64>() / times.len() as f64;
            (times.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / times.len() as f64).sqrt()
        };
        let gsa = spread(DesignVariant::Gsa);
        let base = spread(DesignVariant::Baseline);
        assert!(gsa > base, "GSA spread {gsa:.3e} vs baseline {base:.3e}");
    }

    #[test]
    fn disturbance_stays_near_one_percent() {
        // Paper §8.1: disturbances ≈ 0.9 % of the reference voltage. The
        // unmatched-GMC bitline is the relevant disturbance path.
        let mc = MonteCarlo::default();
        let p = fast_params();
        let s = mc.summarize(&p, DesignVariant::Gmc, ActivationScenario::unmatched_one());
        assert!(
            s.max_unmatched_disturbance < 0.02,
            "disturbance {:.4} of VDD",
            s.max_unmatched_disturbance
        );
    }

    #[test]
    fn monte_carlo_is_deterministic_for_fixed_seed() {
        let mc = MonteCarlo::default();
        let p = fast_params();
        let a = mc.summarize(&p, DesignVariant::Bsa, ActivationScenario::matched_one());
        let b = mc.summarize(&p, DesignVariant::Bsa, ActivationScenario::matched_one());
        assert_eq!(a, b);
    }

    #[test]
    fn different_designs_get_different_noise_streams() {
        let mc = MonteCarlo::default();
        let p = fast_params();
        let a = mc.summarize(
            &p,
            DesignVariant::Baseline,
            ActivationScenario::matched_one(),
        );
        let b = mc.summarize(&p, DesignVariant::Bsa, ActivationScenario::matched_one());
        // Final voltages clamp to the rail, so distinguish the streams by
        // the latch-time statistics instead.
        assert_ne!(a.mean_latch_time.to_bits(), b.mean_latch_time.to_bits());
    }

    #[test]
    fn latch_times_are_nanoseconds() {
        let mc = MonteCarlo {
            runs: 10,
            ..MonteCarlo::default()
        };
        let p = fast_params();
        let s = mc.summarize(
            &p,
            DesignVariant::Baseline,
            ActivationScenario::matched_one(),
        );
        assert!(s.mean_latch_time > 1e-9 && s.mean_latch_time < 50e-9);
    }
}
