//! Circuit parameters for the 22 nm low-power DRAM cell model.
//!
//! Nominal values follow published figures for 2x-nm DRAM arrays (cell
//! capacitance ≈ 24 fF, bitline capacitance ≈ 85 fF, access transistor
//! on-resistance in the 10–20 kΩ range) and the Low-Power PTM supply of
//! 0.8 V used by the paper's LTSpice decks.

use std::fmt;

/// Which hardware design's equivalent circuit is simulated (paper Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignVariant {
    /// Unmodified commodity DRAM (1T1C, always-connected SA).
    Baseline,
    /// pLUTo-BSA: SA plus matchline-controlled FF tap (extra sense-node load).
    Bsa,
    /// pLUTo-GSA: matchline-controlled switch between bitline and SA.
    Gsa,
    /// pLUTo-GMC: 2T1C gated cell plus gated SA enable.
    Gmc,
}

impl DesignVariant {
    /// All four variants in the paper's Figure 6 order.
    pub const ALL: [DesignVariant; 4] = [
        DesignVariant::Baseline,
        DesignVariant::Bsa,
        DesignVariant::Gsa,
        DesignVariant::Gmc,
    ];
}

impl fmt::Display for DesignVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignVariant::Baseline => write!(f, "Baseline"),
            DesignVariant::Bsa => write!(f, "pLUTo-BSA"),
            DesignVariant::Gsa => write!(f, "pLUTo-GSA"),
            DesignVariant::Gmc => write!(f, "pLUTo-GMC"),
        }
    }
}

/// Electrical parameters of the cell/bitline/sense-amplifier network.
///
/// Units: volts, farads, ohms, seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitParams {
    /// Supply voltage (0.8 V for the low-power 22 nm PTM corner).
    pub vdd: f64,
    /// Cell storage capacitance.
    pub c_cell: f64,
    /// Bitline parasitic capacitance.
    pub c_bl: f64,
    /// Access-transistor on-resistance.
    pub r_on: f64,
    /// Series resistance of one matchline-controlled switch (GSA path, and
    /// the second transistor of the GMC 2T1C cell).
    pub r_switch: f64,
    /// Regeneration time constant of the enabled sense amplifier: smaller
    /// is a stronger amplifier.
    pub tau_sa: f64,
    /// Sense-amplifier enable time after wordline assertion (must exceed
    /// the charge-sharing time for reliable sensing).
    pub t_sa_enable: f64,
    /// Extra sense-node load added by the BSA flip-flop tap, as a fraction
    /// of `c_bl`.
    pub bsa_ff_load: f64,
    /// Sense-amplifier input offset (volts); Monte Carlo perturbs this.
    pub sa_offset: f64,
    /// Integration time step.
    pub dt: f64,
    /// Total simulated time.
    pub t_end: f64,
}

impl CircuitParams {
    /// Nominal 22 nm low-power parameters used throughout the reproduction.
    pub fn lp22nm() -> Self {
        CircuitParams {
            vdd: 0.8,
            c_cell: 24e-15,
            c_bl: 85e-15,
            r_on: 15e3,
            r_switch: 3e3,
            tau_sa: 2.5e-9,
            t_sa_enable: 3e-9,
            bsa_ff_load: 0.02,
            sa_offset: 0.0,
            dt: 10e-12,
            t_end: 125e-9,
        }
    }

    /// Charge-sharing voltage swing: the ±δ developed on a precharged
    /// bitline when a full/empty cell connects to it,
    /// `δ = (VDD/2) · C_cell / (C_cell + C_bl)`.
    pub fn charge_share_delta(&self) -> f64 {
        (self.vdd / 2.0) * self.c_cell / (self.c_cell + self.c_bl)
    }

    /// Number of integration steps.
    pub fn steps(&self) -> usize {
        (self.t_end / self.dt).round() as usize
    }
}

impl Default for CircuitParams {
    fn default() -> Self {
        CircuitParams::lp22nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_delta_is_tens_of_millivolts() {
        let p = CircuitParams::lp22nm();
        let delta = p.charge_share_delta();
        assert!(delta > 0.05 && delta < 0.12, "δ = {delta} V");
    }

    #[test]
    fn sa_enable_after_charge_sharing_tau() {
        let p = CircuitParams::lp22nm();
        // Charge-share time constant: R_on (C_cell ∥ C_bl).
        let c_ser = p.c_cell * p.c_bl / (p.c_cell + p.c_bl);
        let tau = p.r_on * c_ser;
        assert!(
            p.t_sa_enable > 5.0 * tau,
            "SA must enable after sharing settles"
        );
    }

    #[test]
    fn steps_counts_full_window() {
        let p = CircuitParams::lp22nm();
        assert_eq!(p.steps(), 12_500);
    }

    #[test]
    fn variants_display() {
        assert_eq!(DesignVariant::Gmc.to_string(), "pLUTo-GMC");
        assert_eq!(DesignVariant::ALL.len(), 4);
    }
}
