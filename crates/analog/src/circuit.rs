//! Transient simulation of a single row activation.
//!
//! Two-node RC network (cell node, bitline node) integrated with explicit
//! Euler, plus a regenerative sense amplifier that, once enabled, drives the
//! bitline toward the rail selected by the sign of `V_bl − VDD/2 + offset`.
//! The restore phase emerges naturally: while the wordline is asserted, the
//! cell node tracks the bitline through the access path, so a sensed '1'
//! recharges the cell to VDD (and a '0' discharges it) exactly as in real
//! DRAM.

use crate::params::{CircuitParams, DesignVariant};

/// Initial/topology conditions for one activation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivationScenario {
    /// Stored bit: `true` = cell charged to VDD, `false` = 0 V.
    pub cell_value: bool,
    /// Matchline state during the activation (GSA/GMC designs). For
    /// Baseline/BSA this only controls the FF tap and has no effect on the
    /// bitline trajectory.
    pub matchline: bool,
    /// Residual offset on the bitline at t = 0, in volts, relative to the
    /// VDD/2 precharge level. Models GSA's unprecharged consecutive
    /// activations (paper §8.1: GSA is the noisiest design for exactly this
    /// reason).
    pub bitline_residue: f64,
}

impl ActivationScenario {
    /// A matched activation of a charged cell on a cleanly precharged
    /// bitline — the common case in Figure 6.
    pub fn matched_one() -> Self {
        ActivationScenario {
            cell_value: true,
            matchline: true,
            bitline_residue: 0.0,
        }
    }

    /// A matched activation of an empty cell.
    pub fn matched_zero() -> Self {
        ActivationScenario {
            cell_value: false,
            matchline: true,
            bitline_residue: 0.0,
        }
    }

    /// An unmatched activation (GSA: SA gated off, destructive; GMC: cell
    /// gated off, bitline undisturbed).
    pub fn unmatched_one() -> Self {
        ActivationScenario {
            cell_value: true,
            matchline: false,
            bitline_residue: 0.0,
        }
    }
}

/// Result of a transient simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct Transient {
    /// Simulated design.
    pub variant: DesignVariant,
    /// Scenario simulated.
    pub scenario: ActivationScenario,
    /// Sample times (seconds).
    pub time: Vec<f64>,
    /// Bitline voltage at each sample (volts).
    pub v_bitline: Vec<f64>,
    /// Cell-node voltage at each sample (volts).
    pub v_cell: Vec<f64>,
}

impl Transient {
    /// Final bitline voltage.
    pub fn final_bitline(&self) -> f64 {
        *self.v_bitline.last().expect("non-empty transient")
    }

    /// Final cell voltage (captures restore, or data loss for GSA).
    pub fn final_cell(&self) -> f64 {
        *self.v_cell.last().expect("non-empty transient")
    }

    /// Whether the sense amplifier resolved the stored value correctly
    /// (final bitline within 5 % of the correct rail). Only meaningful for
    /// matched activations.
    pub fn sensed_correctly(&self, vdd: f64) -> bool {
        let target = if self.scenario.cell_value { vdd } else { 0.0 };
        (self.final_bitline() - target).abs() < 0.05 * vdd
    }

    /// Time (seconds) at which the bitline first comes within 10 % of the
    /// target rail; `None` if it never does (e.g. unmatched GSA).
    pub fn latch_time(&self, vdd: f64) -> Option<f64> {
        let target = if self.scenario.cell_value { vdd } else { 0.0 };
        self.time
            .iter()
            .zip(&self.v_bitline)
            .find(|(_, &v)| (v - target).abs() < 0.1 * vdd)
            .map(|(&t, _)| t)
    }

    /// Maximum excursion of the bitline away from the VDD/2 precharge level
    /// over the whole transient, in volts.
    pub fn max_disturbance(&self, vdd: f64) -> f64 {
        let half = vdd / 2.0;
        self.v_bitline
            .iter()
            .map(|v| (v - half).abs())
            .fold(0.0, f64::max)
    }
}

/// Simulates one row activation of `variant` under `scenario`.
///
/// The wordline asserts at t = 0; the sense amplifier (where connected and
/// enabled) turns on at `params.t_sa_enable`.
pub fn simulate_activation(
    params: &CircuitParams,
    variant: DesignVariant,
    scenario: ActivationScenario,
) -> Transient {
    let vdd = params.vdd;
    let half = vdd / 2.0;
    let steps = params.steps();
    let dt = params.dt;

    // Topology per design (paper Fig. 4).
    let (cell_path_r, cell_connected, sa_connected) = match variant {
        DesignVariant::Baseline | DesignVariant::Bsa => (params.r_on, true, true),
        // GSA: cell always connects; the m-c switch gates the SA.
        DesignVariant::Gsa => (params.r_on, true, scenario.matchline),
        // GMC: the extra in-cell transistor gates the *cell*; the SA enable
        // is additionally gated by the matchline.
        DesignVariant::Gmc => (
            params.r_on + params.r_switch,
            scenario.matchline,
            scenario.matchline,
        ),
    };
    // BSA's FF tap loads the sense node slightly.
    let c_bl = match variant {
        DesignVariant::Bsa => params.c_bl * (1.0 + params.bsa_ff_load),
        _ => params.c_bl,
    };
    // GSA's SA sits behind the switch; when connected it adds a small series
    // resistance to the regeneration path, slightly slowing (and noising)
    // the latch — consistent with the paper's observation.
    let sa_tau = match variant {
        DesignVariant::Gsa => params.tau_sa * (1.0 + params.r_switch / params.r_on),
        _ => params.tau_sa,
    };

    let mut v_cell = if scenario.cell_value { vdd } else { 0.0 };
    let mut v_bl = half + scenario.bitline_residue;

    let mut out = Transient {
        variant,
        scenario,
        time: Vec::with_capacity(steps + 1),
        v_bitline: Vec::with_capacity(steps + 1),
        v_cell: Vec::with_capacity(steps + 1),
    };
    out.time.push(0.0);
    out.v_bitline.push(v_bl);
    out.v_cell.push(v_cell);

    for k in 1..=steps {
        let t = k as f64 * dt;
        // Charge sharing through the access path.
        let i_share = if cell_connected {
            (v_cell - v_bl) / cell_path_r
        } else {
            0.0
        };
        let mut dv_bl = i_share / c_bl;
        let dv_cell = if cell_connected {
            -i_share / params.c_cell
        } else {
            0.0
        };
        // Regenerative sense amplifier.
        if sa_connected && t >= params.t_sa_enable {
            let err = v_bl - half + params.sa_offset;
            let target = if err >= 0.0 { vdd } else { 0.0 };
            dv_bl += (target - v_bl) / sa_tau;
        }
        v_bl += dv_bl * dt;
        v_cell += dv_cell * dt;
        // Rails clamp (transistors cut off past the rails).
        v_bl = v_bl.clamp(0.0, vdd);
        v_cell = v_cell.clamp(0.0, vdd);
        out.time.push(t);
        out.v_bitline.push(v_bl);
        out.v_cell.push(v_cell);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> CircuitParams {
        CircuitParams::lp22nm()
    }

    #[test]
    fn baseline_senses_one_and_restores_cell() {
        let t = simulate_activation(
            &p(),
            DesignVariant::Baseline,
            ActivationScenario::matched_one(),
        );
        assert!(t.sensed_correctly(p().vdd));
        assert!(
            t.final_cell() > 0.95 * p().vdd,
            "restore failed: {}",
            t.final_cell()
        );
    }

    #[test]
    fn baseline_senses_zero_and_restores_cell() {
        let t = simulate_activation(
            &p(),
            DesignVariant::Baseline,
            ActivationScenario::matched_zero(),
        );
        assert!(t.sensed_correctly(p().vdd));
        assert!(t.final_cell() < 0.05 * p().vdd);
    }

    #[test]
    fn all_designs_sense_matched_cells_correctly() {
        // Paper §8.1 key result: none of the three designs introduces errors.
        for variant in DesignVariant::ALL {
            for scenario in [
                ActivationScenario::matched_one(),
                ActivationScenario::matched_zero(),
            ] {
                let t = simulate_activation(&p(), variant, scenario);
                assert!(
                    t.sensed_correctly(p().vdd),
                    "{variant} failed to sense {:?}",
                    scenario.cell_value
                );
            }
        }
    }

    #[test]
    fn activation_latency_similar_across_designs() {
        // Paper §8.1: "in all pLUTo designs, the activation time is not
        // affected by the introduced DRAM modifications."
        let base = simulate_activation(
            &p(),
            DesignVariant::Baseline,
            ActivationScenario::matched_one(),
        )
        .latch_time(p().vdd)
        .unwrap();
        for variant in [DesignVariant::Bsa, DesignVariant::Gsa, DesignVariant::Gmc] {
            let t = simulate_activation(&p(), variant, ActivationScenario::matched_one())
                .latch_time(p().vdd)
                .unwrap();
            assert!(
                (t - base).abs() / base < 0.25,
                "{variant} latch time {t:.2e} vs baseline {base:.2e}"
            );
        }
    }

    #[test]
    fn gsa_unmatched_read_is_destructive() {
        // SA gated off: the cell dumps charge into the bitline and is never
        // restored — the defining GSA trade-off (paper §5.2.1).
        let t = simulate_activation(
            &p(),
            DesignVariant::Gsa,
            ActivationScenario::unmatched_one(),
        );
        let vdd = p().vdd;
        // Bitline only moves by the charge-share delta…
        assert!(t.final_bitline() < vdd / 2.0 + 2.0 * p().charge_share_delta());
        // …and the cell has lost its full level.
        assert!(
            t.final_cell() < 0.75 * vdd,
            "cell kept {} V",
            t.final_cell()
        );
    }

    #[test]
    fn gmc_unmatched_bitline_undisturbed() {
        // GMC's gated cell never perturbs the bitline when unmatched
        // (paper §5.3: "the voltage in the bitlines is kept at VDD/2").
        let t = simulate_activation(
            &p(),
            DesignVariant::Gmc,
            ActivationScenario::unmatched_one(),
        );
        let vdd = p().vdd;
        assert!(t.max_disturbance(vdd) < 0.01 * vdd);
        // And the cell keeps its charge (non-destructive).
        assert!(t.final_cell() > 0.99 * vdd);
    }

    #[test]
    fn gsa_residue_still_senses_correctly() {
        // Consecutive unprecharged activations leave residue; sensing must
        // still resolve correctly (paper: "we observe correct row activation
        // behavior even in this case").
        let delta = p().charge_share_delta();
        let scenario = ActivationScenario {
            cell_value: true,
            matchline: true,
            bitline_residue: -0.5 * delta, // worst-case opposing residue
        };
        let t = simulate_activation(&p(), DesignVariant::Gsa, scenario);
        assert!(t.sensed_correctly(p().vdd));
    }

    #[test]
    fn charge_share_delta_visible_before_sa_enable() {
        let params = p();
        let t = simulate_activation(
            &params,
            DesignVariant::Baseline,
            ActivationScenario::matched_one(),
        );
        // Sample just before SA enable.
        let idx = (params.t_sa_enable / params.dt) as usize - 1;
        let swing = t.v_bitline[idx] - params.vdd / 2.0;
        let delta = params.charge_share_delta();
        assert!(
            (swing - delta).abs() < 0.2 * delta,
            "swing {swing:.4} V vs δ {delta:.4} V"
        );
    }

    #[test]
    fn transient_is_dense_and_monotone_time() {
        let t = simulate_activation(
            &p(),
            DesignVariant::Baseline,
            ActivationScenario::matched_one(),
        );
        assert_eq!(t.time.len(), p().steps() + 1);
        assert!(t.time.windows(2).all(|w| w[1] > w[0]));
    }
}
