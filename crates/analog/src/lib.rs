//! # pluto-analog — circuit-level simulation of the pLUTo DRAM designs
//!
//! Reproduces the paper's §8.1 reliability study (Figure 6): transient
//! simulation of the bitline voltage during a row activation for unmodified
//! DRAM and for the three pLUTo designs (BSA, GSA, GMC), with Monte Carlo
//! process variation.
//!
//! The authors use LTSpice with Low-Power 22 nm Metal Gate PTM transistor
//! models and run 100 Monte Carlo iterations at 5 % process variation. We
//! substitute an explicit-Euler ODE solver over the equivalent RC +
//! regenerative-sense-amplifier network (see `DESIGN.md` §1): the circuit
//! *topology* per design follows the paper's Figure 4 exactly —
//!
//! * **Baseline / BSA** — 1T1C cell on the bitline; the BSA flip-flop tap
//!   adds a small capacitive load on the sense node but no new series
//!   element.
//! * **GSA** — a matchline-controlled switch *between bitline and sense
//!   amplifier*: when open, the SA never amplifies and the read is
//!   destructive; consecutive unprecharged activations accumulate residue,
//!   making GSA the noisiest design (paper: "the activation procedure is
//!   the noisiest for pLUTo-GSA").
//! * **GMC** — a 2T1C cell (extra series transistor) and a gated SA enable:
//!   an unmatched cell never perturbs its bitline.
//!
//! The observable is the same as the paper's: bitline voltage versus time
//! after wordline assertion, and the pass criteria are the same: correct
//! sensing in all designs, unchanged activation latency, and disturbances
//! bounded to ≈ 1 % of the reference voltage.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod circuit;
pub mod montecarlo;
pub mod params;

pub use circuit::{simulate_activation, ActivationScenario, Transient};
pub use montecarlo::{MonteCarlo, MonteCarloSummary};
pub use params::{CircuitParams, DesignVariant};
