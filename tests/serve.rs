//! Integration tests of the streaming serve path (`DESIGN.md` §9):
//! served outputs and per-query `CostReport`s are bit-identical to the
//! serial `Session` oracle for any worker count and any seeded-shuffle
//! arrival order of mixed small-query / large-sweep traffic; tickets
//! stream back in arrival order; graceful drain never drops a ticket;
//! and work-stealing activates under skewed lane contention without
//! perturbing a single bit of output.

use pluto_repro::baselines::WorkloadId;
use pluto_repro::core::lut::Lut;
use pluto_repro::core::serve::{serial_oracle, QueryReply, QuerySpec, ServeConfig, Server, Ticket};
use pluto_repro::core::session::ExecConfig;
use pluto_repro::core::{DesignKind, PlutoError};
use pluto_repro::workloads::serve_lut;
use sim_support::{Rng, SeedableRng, StdRng};
use std::sync::Arc;

fn registry_lut(id: WorkloadId) -> Arc<Lut> {
    Arc::new(serve_lut(id).unwrap_or_else(|| panic!("{id:?} serves a single LUT")))
}

/// Mixed traffic: small latency-class queries against three small
/// registry LUTs plus heavyweight sweeps against the partitioned
/// 4096-entry Gamma12 tone map, inputs drawn from a seeded RNG.
fn mixed_traffic(seed: u64) -> Vec<QuerySpec> {
    let add4 = registry_lut(WorkloadId::Add4);
    let bc8 = registry_lut(WorkloadId::Bc8);
    let imgbin = registry_lut(WorkloadId::ImgBin);
    let gamma = registry_lut(WorkloadId::Gamma12);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut specs = Vec::new();
    for i in 0..28u64 {
        let (lut, modulo, len, design) = match i % 7 {
            // A sweep every 7th arrival; small queries otherwise.
            0 => (&gamma, 4096u64, 24usize, DesignKind::Gmc),
            1 | 4 => (&add4, 256, 6, DesignKind::Gmc),
            2 | 5 => (&bc8, 256, 5, DesignKind::Bsa),
            _ => (&imgbin, 256, 7, DesignKind::Gmc),
        };
        specs.push(QuerySpec {
            config: ExecConfig::measurement(design),
            lut: Arc::clone(lut),
            inputs: (0..len).map(|_| rng.gen_range(0..modulo)).collect(),
        });
    }
    specs
}

/// Fisher–Yates with a seeded RNG: a deterministic arrival-order shuffle.
fn shuffled(mut specs: Vec<QuerySpec>, seed: u64) -> Vec<QuerySpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..specs.len()).rev() {
        let j = rng.gen_range(0..=i);
        specs.swap(i, j);
    }
    specs
}

fn serve_all(specs: &[QuerySpec], workers: usize, batch_slots: usize) -> Vec<QueryReply> {
    let mut server = Server::new(ServeConfig {
        workers,
        batch_slots,
    });
    let tickets: Vec<Ticket> = specs.iter().map(|s| server.enqueue(s.clone())).collect();
    server.drain();
    tickets
        .into_iter()
        .map(|t| t.wait().expect("query served"))
        .collect()
}

#[test]
fn served_results_are_bit_identical_to_the_serial_oracle_for_any_worker_count() {
    let specs = mixed_traffic(7);
    let oracle: Vec<_> = specs.iter().map(|s| serial_oracle(s).unwrap()).collect();
    for workers in [1usize, 2, 4] {
        let replies = serve_all(&specs, workers, 4);
        for (i, ((values, report), reply)) in oracle.iter().zip(&replies).enumerate() {
            assert_eq!(&reply.values, values, "workers={workers} query {i}: values");
            assert_eq!(&reply.report, report, "workers={workers} query {i}: report");
            assert!(reply.report.validated, "workers={workers} query {i}");
        }
    }
}

#[test]
fn seeded_shuffle_arrival_orders_do_not_perturb_any_query() {
    let base = mixed_traffic(11);
    // The oracle is a property of the spec alone, so however arrival
    // order, batching, worker count, and stealing interleave execution,
    // each query's reply must match its own oracle bit-for-bit.
    for (shuffle_seed, workers) in [(1u64, 1usize), (2, 2), (3, 4), (4, 4)] {
        let specs = shuffled(base.clone(), shuffle_seed);
        let replies = serve_all(&specs, workers, 3);
        for (i, (spec, reply)) in specs.iter().zip(&replies).enumerate() {
            let (values, report) = serial_oracle(spec).unwrap();
            assert_eq!(
                reply.values, values,
                "shuffle {shuffle_seed} workers {workers} query {i}"
            );
            assert_eq!(
                reply.report, report,
                "shuffle {shuffle_seed} workers {workers} query {i}"
            );
        }
    }
}

#[test]
fn tickets_stream_in_arrival_order() {
    let specs = mixed_traffic(5);
    let mut server = Server::with_workers(2);
    let tickets: Vec<Ticket> = specs.iter().map(|s| server.enqueue(s.clone())).collect();
    for (i, t) in tickets.iter().enumerate() {
        assert_eq!(t.seq(), i as u64, "tickets number in arrival order");
    }
    server.drain();
    // After drain every ticket resolves without blocking, and each reply
    // carries its own arrival sequence number.
    for (i, t) in tickets.into_iter().enumerate() {
        let reply = t.wait().expect("query served");
        assert_eq!(reply.seq, i as u64);
    }
}

#[test]
fn drain_resolves_every_ticket_including_unflushed_partial_batches() {
    let specs = mixed_traffic(3);
    let mut server = Server::new(ServeConfig {
        workers: 2,
        batch_slots: 1000, // nothing auto-flushes; drain must flush
    });
    let tickets: Vec<Ticket> = specs.iter().map(|s| server.enqueue(s.clone())).collect();
    assert_eq!(server.outstanding(), specs.len() as u64);
    server.drain();
    assert_eq!(server.outstanding(), 0);
    for t in tickets {
        // try_wait: proves the result is already there — no blocking.
        let reply = t.try_wait().expect("resolved by drain").expect("served");
        assert!(reply.report.validated);
    }
    // The server stays usable after a drain (it is a barrier, not a
    // shutdown).
    let t = server.enqueue(specs[0].clone());
    server.drain();
    assert!(t.wait().unwrap().report.validated);
}

#[test]
fn dropping_the_server_resolves_every_ticket_before_workers_join() {
    let specs = mixed_traffic(9);
    let tickets: Vec<Ticket> = {
        let mut server = Server::with_workers(4);
        let tickets: Vec<Ticket> = specs.iter().map(|s| server.enqueue(s.clone())).collect();
        drop(server); // implicit drain-on-drop
        tickets
    };
    for (spec, t) in specs.iter().zip(tickets) {
        let reply = t
            .try_wait()
            .expect("resolved before drop returned")
            .unwrap();
        let (values, _) = serial_oracle(spec).unwrap();
        assert_eq!(reply.values, values);
    }
}

#[test]
fn stealing_activates_under_contention_and_changes_nothing() {
    let gamma = registry_lut(WorkloadId::Gamma12);
    let sweep = |i: u64| QuerySpec {
        config: ExecConfig::measurement(DesignKind::Gmc),
        lut: Arc::clone(&gamma),
        inputs: (0..16).map(|k| (i * 131 + k * 17) % 4096).collect(),
    };
    let oracle: Vec<_> = (0..8u64)
        .map(|i| serial_oracle(&sweep(i)).unwrap())
        .collect();

    // All sweep batches share one affinity, so they all home on lane 0;
    // worker 1's lane stays empty and every batch it executes is a
    // steal. The OS scheduler decides when worker 1 wakes, so repeat
    // contended rounds (bounded) until the counter moves.
    let mut server = Server::with_workers(2);
    let mut rounds = 0;
    while server.steals() == 0 && rounds < 100 {
        let tickets: Vec<Ticket> = (0..8u64)
            .map(|i| {
                let t = server.enqueue(sweep(i));
                server.flush(); // one batch per query: 8 stealable items
                t
            })
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            let reply = t.wait().expect("sweep served");
            let (values, report) = &oracle[i];
            assert_eq!(&reply.values, values, "round {rounds} query {i}");
            assert_eq!(&reply.report, report, "round {rounds} query {i}");
        }
        rounds += 1;
    }
    assert!(
        server.steals() > 0,
        "no steal observed in {rounds} contended rounds"
    );
}

/// Mixed qnn + tone-map traffic (`DESIGN.md` §12): inference-shaped
/// queries — signed-product streams against the partitioned 65 536-entry
/// `smul8` table and 12-bit requantization lookups — interleaved with
/// Gamma12 tone-map sweeps, under seeded-shuffle arrival orders. Every
/// reply must match its own serial oracle bit-for-bit.
#[test]
fn mixed_qnn_and_tonemap_traffic_survives_any_arrival_order() {
    use pluto_repro::qnn::gemv::{smul_lut, to_field};
    use pluto_repro::qnn::requant::Requant;

    let smul8 = Arc::new(smul_lut(8).unwrap());
    let requant = Arc::new(Requant::new(12, 2, 8).lut().unwrap());
    let gamma = registry_lut(WorkloadId::Gamma12);
    let mut rng = StdRng::seed_from_u64(17);
    let mut specs = Vec::new();
    for i in 0..18u64 {
        let spec = match i % 3 {
            // A product stream: packed (weight, activation) pairs.
            0 => QuerySpec {
                config: ExecConfig::measurement(DesignKind::Gmc),
                lut: Arc::clone(&smul8),
                inputs: (0..12)
                    .map(|_| {
                        let w = to_field(rng.gen_range(-128..=127), 8);
                        let x = to_field(rng.gen_range(-128..=127), 8);
                        (w << 8) | x
                    })
                    .collect(),
            },
            // A requantization stream over saturated accumulators.
            1 => QuerySpec {
                config: ExecConfig::measurement(DesignKind::Bsa),
                lut: Arc::clone(&requant),
                inputs: (0..10)
                    .map(|_| to_field(rng.gen_range(-2048..=2047), 12))
                    .collect(),
            },
            // The tone-map sweep the serve suite already exercises.
            _ => QuerySpec {
                config: ExecConfig::measurement(DesignKind::Gmc),
                lut: Arc::clone(&gamma),
                inputs: (0..16).map(|_| rng.gen_range(0..4096)).collect(),
            },
        };
        specs.push(spec);
    }
    for (shuffle_seed, workers) in [(1u64, 2usize), (2, 4)] {
        let shuffled_specs = shuffled(specs.clone(), shuffle_seed);
        let replies = serve_all(&shuffled_specs, workers, 3);
        for (i, (spec, reply)) in shuffled_specs.iter().zip(&replies).enumerate() {
            let (values, report) = serial_oracle(spec).unwrap();
            assert_eq!(
                reply.values, values,
                "shuffle {shuffle_seed} workers {workers} query {i}"
            );
            assert_eq!(
                reply.report, report,
                "shuffle {shuffle_seed} workers {workers} query {i}"
            );
        }
    }
}

/// A whole streamed inference next to tone-map traffic: the per-sample
/// serve path produces logits bit-identical to the host oracle even
/// with unrelated queries in flight.
#[test]
fn streamed_inference_matches_the_host_oracle() {
    use pluto_repro::qnn::model::{sample_batch, QuantModel};
    use pluto_repro::qnn::pluto_exec::mlp_exec_config;

    let model = QuantModel::mnist_mlp(7);
    let (digit, x) = sample_batch(3, 1).remove(0);
    let config = mlp_exec_config(DesignKind::Gmc);
    let mut server = Server::with_workers(2);
    // Unrelated traffic in flight on the same server.
    let gamma = registry_lut(WorkloadId::Gamma12);
    let noise = server.enqueue(QuerySpec {
        config: ExecConfig::measurement(DesignKind::Gmc),
        lut: Arc::clone(&gamma),
        inputs: (0..8).map(|k| (k * 509) % 4096).collect(),
    });
    let logits = model.serve_infer(&mut server, &config, &x).unwrap();
    assert_eq!(
        logits,
        model.forward_reference(&x),
        "digit {digit}: served logits"
    );
    server.drain();
    assert!(noise.wait().unwrap().report.validated);
}

#[test]
fn per_query_failures_resolve_only_their_own_ticket() {
    let add4 = registry_lut(WorkloadId::Add4);
    let spec = |inputs: Vec<u64>| QuerySpec {
        config: ExecConfig::measurement(DesignKind::Gmc),
        lut: Arc::clone(&add4),
        inputs,
    };
    let mut server = Server::with_workers(2);
    let good = server.enqueue(spec(vec![1, 2, 3]));
    let bad = server.enqueue(spec(vec![999])); // exceeds the 8-bit index
    let tail = server.enqueue(spec(vec![4, 5]));
    server.drain();
    assert!(good.wait().unwrap().report.validated);
    assert!(matches!(
        bad.wait().unwrap_err(),
        PlutoError::IndexOutOfRange { .. }
    ));
    assert!(tail.wait().unwrap().report.validated);
}
