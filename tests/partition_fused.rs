//! Fused-gather equivalence suite (`DESIGN.md` §8).
//!
//! The fused single-pass partitioned query
//! ([`PartitionedLut::query_with`]) must be indistinguishable from the
//! retained pre-fusion data path
//! ([`PartitionedLut::query_serial_reference`] — one `QueryExecutor` run
//! per segment with rebased inputs and an O(N × slots) merge) in every
//! observable except wall-clock: outputs, `PartitionedCost` **to the
//! bit** (same latency `Picos`, same f64 energy — the per-lane spend
//! sequence is replayed exactly, so even float non-associativity cannot
//! separate them), engine clock/energy deltas, command counters, and the
//! committed source/destination/LUT row bytes. Swept across segment
//! counts {2, 3, 4, 8, 128} × all 3 designs × 2 memory kinds, with
//! seam-boundary inputs, two rounds each (GSA's destroy-reload steady
//! state included).
//!
//! Row-buffer residue is deliberately *not* compared: the fused path
//! leaves different unlatched scratch in subarray buffers (transient GSA
//! reloads, batched sweeps) — unspecified by design.

use pluto_repro::core::partition::PartitionedLut;
use pluto_repro::core::query::QueryScratch;
use pluto_repro::core::{DesignKind, Lut};
use pluto_repro::dram::{BankId, DramConfig, Engine, MemoryKind, RowId, RowLoc, SubarrayId};

/// Rows per subarray: small, so even the 128-segment sweep stays fast.
const SEG_ROWS: usize = 64;

/// Segment counts under test; 128 is the §5.6 high-segment-count regime
/// (an 8192-entry table on this geometry).
const SEGMENT_COUNTS: [usize; 5] = [2, 3, 4, 8, 128];

fn engine(kind: MemoryKind, segs: usize) -> Engine {
    Engine::new(DramConfig {
        kind,
        row_bytes: 32,
        burst_bytes: 8,
        banks: 1,
        // Source + dest + one (pluto, master) pair per segment.
        subarrays_per_bank: (2 + 2 * segs as u16).max(8),
        rows_per_subarray: SEG_ROWS as u16,
    })
}

/// Boundary inputs hugging every segment seam (`k·R ± 1`), the table
/// ends, plus interior points and duplicates — capped at the 16-slot row
/// capacity of the 32 B / 16-bit-slot layout.
fn seam_inputs(len: usize) -> Vec<u64> {
    let mut inputs = vec![0u64, 1, (len - 1) as u64];
    for k in 1..len.div_ceil(SEG_ROWS) {
        let seam = (k * SEG_ROWS) as u64;
        inputs.extend([seam - 1, seam, seam + 1]);
    }
    inputs.push((len / 2) as u64);
    inputs.push(0); // duplicate input: every copy must capture
    inputs.retain(|&x| (x as usize) < len);
    inputs.truncate(16);
    inputs
}

fn peek(e: &Engine, subarray: SubarrayId, row: RowId) -> Vec<u8> {
    e.peek_row(RowLoc {
        bank: BankId(0),
        subarray,
        row,
    })
    .unwrap()
}

#[test]
fn fused_gather_is_bit_identical_to_the_serial_reference() {
    for &segs in &SEGMENT_COUNTS {
        let len = segs * SEG_ROWS;
        let lut =
            Lut::from_fn_len(format!("fuse{segs}"), len, 16, |x| (x * 37 + 11) & 0xFFFF).unwrap();
        let inputs = seam_inputs(len);
        let host = lut.apply_all(&inputs).unwrap();
        for kind in [MemoryKind::Ddr4, MemoryKind::Stacked3d] {
            for design in DesignKind::ALL {
                let label = format!("{design}/{kind}/{segs}seg");

                // Two identically prepared engines: fused vs reference.
                let mut ef = engine(kind, segs);
                let mut er = engine(kind, segs);
                let mut pf =
                    PartitionedLut::load(&mut ef, lut.clone(), BankId(0), SubarrayId(2)).unwrap();
                let mut pr =
                    PartitionedLut::load(&mut er, lut.clone(), BankId(0), SubarrayId(2)).unwrap();
                assert_eq!(pf.segment_count(), segs, "{label}");

                let mut sf = QueryScratch::new();
                let mut sr = QueryScratch::new();
                for round in 0..2 {
                    let rl = format!("{label} round {round}");
                    let cf = pf
                        .query_with(
                            &mut ef,
                            design,
                            SubarrayId(0),
                            SubarrayId(1),
                            &inputs,
                            RowId(0),
                            RowId(3),
                            &mut sf,
                        )
                        .unwrap();
                    let cr = pr
                        .query_serial_reference(
                            &mut er,
                            design,
                            SubarrayId(0),
                            SubarrayId(1),
                            &inputs,
                            RowId(0),
                            RowId(3),
                            &mut sr,
                        )
                        .unwrap();

                    assert_eq!(sf.outputs(), &host[..], "{rl}: fused vs host oracle");
                    assert_eq!(sf.outputs(), sr.outputs(), "{rl}: outputs");
                    // `PartitionedCost` derives PartialEq over exact Picos
                    // and f64 energy: this is the bit-identity assertion.
                    assert_eq!(cf, cr, "{rl}: PartitionedCost");
                    assert_eq!(ef.elapsed(), er.elapsed(), "{rl}: engine clock");
                    assert_eq!(
                        ef.command_energy().as_pj().to_bits(),
                        er.command_energy().as_pj().to_bits(),
                        "{rl}: engine energy bits"
                    );
                    assert_eq!(ef.stats(), er.stats(), "{rl}: command counters");

                    // Committed rows: the source keeps the global index
                    // vector, the destination holds the packed merge, and
                    // every segment's LUT + master rows agree (destroyed
                    // or pristine alike).
                    assert_eq!(
                        peek(&ef, SubarrayId(0), RowId(0)),
                        peek(&er, SubarrayId(0), RowId(0)),
                        "{rl}: source row bytes"
                    );
                    assert_eq!(
                        peek(&ef, SubarrayId(1), RowId(3)),
                        peek(&er, SubarrayId(1), RowId(3)),
                        "{rl}: destination row bytes"
                    );
                    for (f, r) in pf.segments().iter().zip(pr.segments()) {
                        for probe in [0usize, f.lut().len() / 2, f.lut().len() - 1] {
                            assert_eq!(
                                peek(&ef, f.subarray(), RowId(probe as u16)),
                                peek(&er, r.subarray(), RowId(probe as u16)),
                                "{rl}: segment {} row {probe}",
                                f.lut().name()
                            );
                            assert_eq!(
                                peek(&ef, f.master(), RowId(probe as u16)),
                                peek(&er, r.master(), RowId(probe as u16)),
                                "{rl}: master {} row {probe}",
                                f.lut().name()
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn fused_gather_matches_reference_on_padded_tail_segments() {
    // A non-power-of-two 650-entry table: the tail segment is padded to a
    // power of two with masked-out zero rows — seams and the true table
    // end must still merge identically.
    let lut = Lut::from_fn_len("fuse-odd650", 650, 16, |x| (x * x) & 0xFFFF).unwrap();
    let mut inputs = seam_inputs(650);
    inputs.push(649);
    inputs.truncate(16);
    let host = lut.apply_all(&inputs).unwrap();
    for design in DesignKind::ALL {
        let mut ef = engine(MemoryKind::Ddr4, 11);
        let mut er = engine(MemoryKind::Ddr4, 11);
        let mut pf = PartitionedLut::load(&mut ef, lut.clone(), BankId(0), SubarrayId(2)).unwrap();
        let mut pr = PartitionedLut::load(&mut er, lut.clone(), BankId(0), SubarrayId(2)).unwrap();
        let mut sf = QueryScratch::new();
        let mut sr = QueryScratch::new();
        let cf = pf
            .query_with(
                &mut ef,
                design,
                SubarrayId(0),
                SubarrayId(1),
                &inputs,
                RowId(0),
                RowId(1),
                &mut sf,
            )
            .unwrap();
        let cr = pr
            .query_serial_reference(
                &mut er,
                design,
                SubarrayId(0),
                SubarrayId(1),
                &inputs,
                RowId(0),
                RowId(1),
                &mut sr,
            )
            .unwrap();
        assert_eq!(sf.outputs(), &host[..], "{design}: host oracle");
        assert_eq!(sf.outputs(), sr.outputs(), "{design}: outputs");
        assert_eq!(cf, cr, "{design}: PartitionedCost");
        assert_eq!(
            peek(&ef, SubarrayId(1), RowId(1)),
            peek(&er, SubarrayId(1), RowId(1)),
            "{design}: destination row bytes"
        );
    }
}
