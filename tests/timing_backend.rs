//! Differential suite for the pluggable timing backend (`DESIGN.md`
//! §11): on any serial single-bank command stream the analytic and
//! banked backends must agree **bit for bit** — engine clock, energy
//! (compared on raw `f64` bits), command counters, and session-level
//! `CostReport`s across the whole workload registry. The suite also
//! locks the two ways the backends are *supposed* to diverge (row-buffer
//! conflicts and command-queue contention charge latency only under the
//! banked model) and the rule that a recorded cost tape is never
//! replayed across backends.

use pluto_repro::core::lut::{slots_per_row, width_mask, Lut};
use pluto_repro::core::query::{QueryExecutor, QueryPlacement};
use pluto_repro::core::session::{CostReport, Session};
use pluto_repro::core::store::LutStore;
use pluto_repro::core::DesignKind;
use pluto_repro::dram::{
    BankId, DramConfig, EnergyModel, Engine, MemoryKind, RowId, RowLoc, SubarrayId, SweepStepKind,
    TimingBackend, TimingParams,
};
use pluto_repro::workloads::registry;
use sim_support::prop::{self, Gen};
use sim_support::prop_assert_eq;

/// A small-geometry engine on the requested backend with an explicit
/// tFAW scale (0.0 disables the window; >1.0 makes it bite harder).
fn engine(kind: MemoryKind, t_faw_scale: f64, backend: TimingBackend) -> Engine {
    let (base, timing, energy) = match kind {
        MemoryKind::Ddr4 => (
            DramConfig::ddr4_2400(),
            TimingParams::ddr4_2400(),
            EnergyModel::ddr4(),
        ),
        MemoryKind::Stacked3d => (
            DramConfig::hmc_3ds(),
            TimingParams::hmc_3ds(),
            EnergyModel::hmc_3ds(),
        ),
    };
    Engine::with_models(
        DramConfig {
            row_bytes: 32,
            burst_bytes: 8,
            banks: 2,
            subarrays_per_bank: 8,
            rows_per_subarray: 64,
            ..base
        },
        timing.with_t_faw_scale(t_faw_scale),
        energy,
    )
    .with_timing_backend(backend)
}

fn setup(e: &mut Engine, lut: Lut) -> (LutStore, QueryPlacement) {
    let bank = BankId(0);
    let pluto = SubarrayId(2);
    let n = lut.len() as u16;
    let base = e.config().rows_per_subarray - n;
    let store = LutStore::load(e, lut, bank, pluto, SubarrayId(1), base).unwrap();
    (store, QueryPlacement::adjacent(bank, pluto))
}

fn random_lut(g: &mut Gen, tag: u64) -> Lut {
    let input_bits = g.range(1u32..=6);
    let output_bits = g.range(1u32..=16);
    let mask = width_mask(output_bits);
    let len = 1usize << input_bits;
    let elements: Vec<u64> = (0..len).map(|_| g.any::<u64>() & mask).collect();
    Lut::from_table(
        format!("backend-{tag}-{input_bits}x{output_bits}"),
        input_bits,
        output_bits,
        elements,
    )
    .unwrap()
}

/// The exact-agreement invariant at the engine level: query-shaped
/// command streams (all three designs' sweep kinds, both memory kinds,
/// tFAW disabled / nominal / stretched) cost identically under both
/// backends — outputs, `QueryCost`, clock, energy bits, and counters.
#[test]
fn serial_query_streams_agree_bit_for_bit_across_backends() {
    prop::check("timing_backend_differential", 24, |g| {
        let tag: u64 = g.any();
        let scale = [0.0, 1.0, 40.0][g.range(0usize..3)];
        for kind in [MemoryKind::Ddr4, MemoryKind::Stacked3d] {
            for design in DesignKind::ALL {
                let lut = random_lut(g, tag);
                let capacity = slots_per_row(32, lut.slot_bits());
                let inputs: Vec<u64> = g.vec(1, capacity, |g| g.range(0..lut.len() as u64));
                let dst_row = RowId(g.range(0u16..8));
                let label = format!("{design}/{kind}/x{scale}/{}", lut.name());

                let mut e_a = engine(kind, scale, TimingBackend::Analytic);
                let (mut store_a, placement) = setup(&mut e_a, lut.clone());
                let mut e_b = engine(kind, scale, TimingBackend::Banked);
                let (mut store_b, _) = setup(&mut e_b, lut.clone());

                // Back-to-back queries: cold, then from a warm clock.
                for step in 0..2 {
                    let (out_a, cost_a) = {
                        let mut ex = QueryExecutor::new(&mut e_a, design);
                        ex.execute(&mut store_a, placement, &inputs, RowId(0), dst_row)
                            .unwrap()
                    };
                    let (out_b, cost_b) = {
                        let mut ex = QueryExecutor::new(&mut e_b, design);
                        ex.execute(&mut store_b, placement, &inputs, RowId(0), dst_row)
                            .unwrap()
                    };
                    prop_assert_eq!(&out_a, &out_b, "outputs #{step} {label}");
                    prop_assert_eq!(cost_a, cost_b, "cost #{step} {label}");
                    prop_assert_eq!(e_a.elapsed(), e_b.elapsed(), "clock #{step} {label}");
                    prop_assert_eq!(
                        e_a.command_energy().as_pj().to_bits(),
                        e_b.command_energy().as_pj().to_bits(),
                        "energy #{step} {label}"
                    );
                    prop_assert_eq!(e_a.stats(), e_b.stats(), "stats #{step} {label}");
                }
            }
        }
        Ok(())
    });
}

/// `PLUTO_QUICK=1` (the CI smoke configuration) skips the long-running
/// measurement workloads, exactly as `tests/session.rs` does.
fn skip_in_quick_mode(id: &str) -> bool {
    let quick = std::env::var("PLUTO_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false);
    quick && ["CRC-16", "CRC-32", "Salsa20"].contains(&id)
}

/// The exact-agreement invariant at the session level: every registry
/// workload produces a bit-identical `CostReport` under both backends
/// on both memory kinds. Registry streams run one query at a time on
/// one bank, so no conflict or queue penalty may fire.
#[test]
fn full_registry_cost_reports_are_bit_identical_across_backends() {
    for kind in [MemoryKind::Ddr4, MemoryKind::Stacked3d] {
        let run = |backend: TimingBackend| -> Vec<CostReport> {
            let mut session = Session::builder(DesignKind::Gmc)
                .memory(kind)
                .timing(backend)
                .build()
                .unwrap();
            registry()
                .into_iter()
                .filter(|w| !skip_in_quick_mode(w.id()))
                .map(|mut w| session.run(w.as_mut()).unwrap())
                .collect()
        };
        let analytic = run(TimingBackend::Analytic);
        let banked = run(TimingBackend::Banked);
        assert_eq!(analytic.len(), banked.len());
        for (a, b) in analytic.iter().zip(&banked) {
            assert_eq!(a, b, "{} on {kind}", a.workload);
            assert_eq!(
                a.energy.as_pj().to_bits(),
                b.energy.as_pj().to_bits(),
                "{} on {kind}: energy bits",
                a.workload
            );
            assert!(a.validated, "{} on {kind}", a.workload);
            // Serial single-bank streams never conflict or stall.
            assert_eq!(a.row_conflicts, 0, "{} on {kind}", a.workload);
            assert_eq!(a.queue_stalls, 0, "{} on {kind}", a.workload);
        }
    }
}

/// Divergence, part 1: activating over a different open row of the same
/// bank is a row-buffer conflict. Both backends *count* it; only the
/// banked backend charges the tRAS residency + tRP close.
#[test]
fn banked_charges_row_buffer_conflicts_where_analytic_does_not() {
    let run = |backend: TimingBackend| {
        let mut e = Engine::new(DramConfig::ddr4_2400()).with_timing_backend(backend);
        e.activate(RowLoc::new(0, 1, 0)).unwrap();
        // Same bank, different subarray, row still open: conflict.
        e.activate(RowLoc::new(0, 2, 5)).unwrap();
        e
    };
    let analytic = run(TimingBackend::Analytic);
    let banked = run(TimingBackend::Banked);
    assert_eq!(analytic.stats().row_conflicts, 1);
    assert_eq!(banked.stats().row_conflicts, 1);
    assert_eq!(analytic.stats().row_misses, 1);
    let timing = TimingParams::ddr4_2400();
    assert_eq!(
        banked.elapsed(),
        analytic.elapsed() + timing.t_ras + timing.t_rp - timing.t_rcd,
        "banked must wait out tRAS from the first ACT, then pay tRP"
    );
    // Energy never diverges: the conflict penalty is latency-only.
    assert_eq!(
        analytic.command_energy().as_pj().to_bits(),
        banked.command_energy().as_pj().to_bits()
    );
}

/// Divergence, part 2: a charge-share chain faster than the queue's
/// retirement rate fills the bounded per-rank command queue. Both
/// backends count the stalls; only the banked backend delays issue.
#[test]
fn banked_delays_issue_when_the_command_queue_fills() {
    let fast = TimingParams {
        t_rcd: pluto_repro::dram::Picos::from_ns(1.0),
        ..TimingParams::ddr4_2400().with_t_faw_scale(0.0)
    };
    let run = |backend: TimingBackend| {
        let mut e = Engine::with_models(DramConfig::ddr4_2400(), fast.clone(), EnergyModel::ddr4())
            .with_timing_backend(backend);
        e.sweep_rows(
            BankId(0),
            SubarrayId(1),
            RowId(0),
            12,
            SweepStepKind::ChargeShare,
        )
        .unwrap();
        e
    };
    let analytic = run(TimingBackend::Analytic);
    let banked = run(TimingBackend::Banked);
    assert!(
        analytic.stats().queue_stalls > 0,
        "the analytic backend must still count the stalls"
    );
    assert!(banked.stats().queue_stalls > 0);
    // 12 ACTs at 1 ns spacing against an 8-deep queue retiring one entry
    // per tRAS (32 ns): the 9th ACT waits for the 1st to retire.
    assert!(
        banked.elapsed() >= fast.t_ras,
        "queue contention must delay the banked chain: {} < {}",
        banked.elapsed(),
        fast.t_ras
    );
    assert_eq!(
        analytic.elapsed(),
        pluto_repro::dram::Picos::from_ns(12.0),
        "the analytic chain is 12 x tRCD regardless of the queue"
    );
    // Classification agrees: one miss opens the chain, hits follow.
    assert_eq!(analytic.stats().row_misses, 1);
    assert_eq!(analytic.stats().row_hits, 11);
    assert_eq!(banked.stats().row_misses, 1);
    assert_eq!(banked.stats().row_hits, 11);
}

/// A cost tape records the backend that produced it and refuses replay
/// on any engine running the other backend, even when every timing
/// signature matches.
#[test]
fn tapes_are_never_replayed_across_backends() {
    let record = |backend: TimingBackend| {
        let mut e = Engine::new(DramConfig::ddr4_2400()).with_timing_backend(backend);
        e.begin_tape();
        e.activate(RowLoc::new(0, 1, 3)).unwrap();
        e.precharge(BankId(0), SubarrayId(1)).unwrap();
        e.end_tape().expect("tape must record")
    };
    let analytic_tape = record(TimingBackend::Analytic);
    let banked_tape = record(TimingBackend::Banked);
    assert_eq!(analytic_tape.backend(), TimingBackend::Analytic);
    assert_eq!(banked_tape.backend(), TimingBackend::Banked);

    let fresh_analytic = Engine::new(DramConfig::ddr4_2400());
    let fresh_banked =
        Engine::new(DramConfig::ddr4_2400()).with_timing_backend(TimingBackend::Banked);
    assert!(analytic_tape.replayable_from(&fresh_analytic));
    assert!(banked_tape.replayable_from(&fresh_banked));
    assert!(
        !analytic_tape.replayable_from(&fresh_banked),
        "an analytic tape must not replay on a banked engine"
    );
    assert!(
        !banked_tape.replayable_from(&fresh_analytic),
        "a banked tape must not replay on an analytic engine"
    );
}
