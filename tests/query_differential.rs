//! Differential suite locking down the word-parallel query engine
//! (`DESIGN.md` §7): the vectorized row-sweep/match/pack path must be
//! bit-identical to the retained scalar reference path — outputs, per-phase
//! costs, engine clocks/energy/stats, and committed DRAM rows — across
//! random LUTs × slot widths × input vectors × all three designs × both
//! memory kinds, and every workload `CostReport` must match the golden
//! values captured before the refactor.

use pluto_repro::baselines::WorkloadId;
use pluto_repro::core::lut::{
    pack_slots, pack_slots_scalar, slots_per_row, unpack_slots, unpack_slots_scalar, width_mask,
    Lut,
};
use pluto_repro::core::query::{QueryExecutor, QueryPlacement};
use pluto_repro::core::session::{ExecConfig, Session};
use pluto_repro::core::store::LutStore;
use pluto_repro::core::DesignKind;
use pluto_repro::dram::{BankId, DramConfig, Engine, MemoryKind, RowId, RowLoc, SubarrayId};
use pluto_repro::workloads::workload_for;
use sim_support::prop::{self, Gen};
use sim_support::prop_assert_eq;

/// A small-geometry engine on either memory kind (64 rows per subarray
/// bounds LUTs to 6 input bits; the slot width still sweeps 1..=16).
fn engine(kind: MemoryKind) -> Engine {
    let base = match kind {
        MemoryKind::Ddr4 => DramConfig::ddr4_2400(),
        MemoryKind::Stacked3d => DramConfig::hmc_3ds(),
    };
    Engine::new(DramConfig {
        row_bytes: 32,
        burst_bytes: 8,
        banks: 2,
        subarrays_per_bank: 8,
        rows_per_subarray: 64,
        ..base
    })
}

fn setup(e: &mut Engine, lut: Lut) -> (LutStore, QueryPlacement) {
    let bank = BankId(0);
    let pluto = SubarrayId(2);
    let n = lut.len() as u16;
    let base = e.config().rows_per_subarray - n;
    let store = LutStore::load(e, lut, bank, pluto, SubarrayId(1), base).unwrap();
    (store, QueryPlacement::adjacent(bank, pluto))
}

/// A random LUT whose slot width lands in 1..=16, including
/// non-power-of-two and word-straddling widths (slot width =
/// `max(input_bits, output_bits)`).
fn random_lut(g: &mut Gen, tag: u64) -> Lut {
    let input_bits = g.range(1u32..=6);
    let output_bits = g.range(1u32..=16);
    let mask = width_mask(output_bits);
    let len = 1usize << input_bits;
    let elements: Vec<u64> = (0..len).map(|_| g.any::<u64>() & mask).collect();
    Lut::from_table(
        format!("diff-{tag}-{input_bits}x{output_bits}"),
        input_bits,
        output_bits,
        elements,
    )
    .unwrap()
}

/// The tentpole property: on identical engines, the word-parallel path and
/// the scalar reference path are indistinguishable at every observable
/// level.
#[test]
fn word_parallel_path_is_bit_identical_to_scalar_reference() {
    prop::check("word_vs_scalar_query", 48, |g| {
        let tag: u64 = g.any();
        for kind in [MemoryKind::Ddr4, MemoryKind::Stacked3d] {
            for design in DesignKind::ALL {
                let lut = random_lut(g, tag);
                let capacity = slots_per_row(32, lut.slot_bits());
                let inputs: Vec<u64> = g.vec(0, capacity, |g| g.range(0..lut.len() as u64));
                let dst_row = RowId(g.range(0u16..8));

                let mut e_word = engine(kind);
                let (mut store_w, placement) = setup(&mut e_word, lut.clone());
                let mut ex = QueryExecutor::new(&mut e_word, design);
                let (out_w, cost_w) = ex
                    .execute(&mut store_w, placement, &inputs, RowId(0), dst_row)
                    .unwrap();

                let mut e_scalar = engine(kind);
                let (mut store_s, placement) = setup(&mut e_scalar, lut.clone());
                let mut ex = QueryExecutor::new(&mut e_scalar, design);
                let (out_s, cost_s) = ex
                    .execute_scalar_reference(&mut store_s, placement, &inputs, RowId(0), dst_row)
                    .unwrap();

                let label = format!("{design}/{kind}/{}", lut.name());
                prop_assert_eq!(&out_w, &out_s, "outputs {label}");
                let expect = lut.apply_all(&inputs).unwrap();
                prop_assert_eq!(&out_w, &expect, "reference semantics {label}");
                prop_assert_eq!(cost_w, cost_s, "cost {label}");
                prop_assert_eq!(e_word.elapsed(), e_scalar.elapsed(), "clock {label}");
                prop_assert_eq!(
                    e_word.command_energy(),
                    e_scalar.command_energy(),
                    "energy {label}"
                );
                prop_assert_eq!(e_word.stats(), e_scalar.stats(), "stats {label}");
                let dst = RowLoc {
                    bank: placement.bank,
                    subarray: placement.dest,
                    row: dst_row,
                };
                prop_assert_eq!(
                    e_word.peek_row(dst).unwrap(),
                    e_scalar.peek_row(dst).unwrap(),
                    "destination row {label}"
                );
            }
        }
        Ok(())
    });
}

/// Word-parallel pack/unpack agree with the bit-serial reference across
/// every slot width 1..=16 (and wider), including widths that straddle
/// 64-bit window boundaries, for random values and random byte rows.
#[test]
fn pack_unpack_match_scalar_reference_for_all_widths() {
    prop::check("pack_unpack_word_vs_scalar", 64, |g| {
        let slot_bits = g.range(1u32..=16);
        let row_bytes = g.range(1usize..=96);
        let capacity = slots_per_row(row_bytes, slot_bits);
        if capacity == 0 {
            return Ok(());
        }
        let mask = width_mask(slot_bits);
        let count = g.range(0..=capacity);
        let values: Vec<u64> = g.vec(0, capacity, |g| g.any::<u64>() & mask);
        let word = pack_slots(&values, slot_bits, row_bytes).unwrap();
        let scalar = pack_slots_scalar(&values, slot_bits, row_bytes).unwrap();
        prop_assert_eq!(&word, &scalar, "pack w={}", slot_bits);

        // Unpacking arbitrary bytes (not just packed output) must agree too.
        let raw: Vec<u8> = g.vec_any(row_bytes, row_bytes);
        prop_assert_eq!(
            unpack_slots(&raw, slot_bits, count),
            unpack_slots_scalar(&raw, slot_bits, count),
            "unpack w={} count={}",
            slot_bits,
            count
        );
        // Roundtrip through the word path recovers the values.
        prop_assert_eq!(
            unpack_slots(&word, slot_bits, values.len()),
            values,
            "roundtrip w={}",
            slot_bits
        );
        Ok(())
    });
}

/// `PLUTO_QUICK=1` (the CI smoke configuration) skips the three
/// long-running measurement workloads, matching `tests/cluster.rs`.
fn skip_in_quick_mode(id: WorkloadId) -> bool {
    let quick = std::env::var("PLUTO_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false);
    quick
        && matches!(
            id,
            WorkloadId::Crc16 | WorkloadId::Crc32 | WorkloadId::Salsa20
        )
}

/// Golden `CostReport`s captured on the pre-refactor (bit-serial,
/// element-by-element) query engine: `(workload, design, kind, time_ps,
/// energy_pj_bits, acts, paper_bytes_bits, validated)`. Energy and byte
/// volumes are stored as `f64::to_bits` so equality is exact.
type GoldenRow = (
    &'static str,
    &'static str,
    &'static str,
    u64,
    u64,
    u64,
    u64,
    bool,
);

const GOLDEN: [GoldenRow; 84] = [
    (
        "CRC-8",
        "pLUTo-BSA",
        "DDR4",
        4803642880,
        0x41f2176b11000000,
        136448,
        0x4128000000000000,
        true,
    ),
    (
        "CRC-8",
        "pLUTo-BSA",
        "3DS",
        3480921304,
        0x41d2176b11000000,
        136448,
        0x40d8000000000000,
        true,
    ),
    (
        "CRC-8",
        "pLUTo-GSA",
        "DDR4",
        5052065280,
        0x41f2d8c711000000,
        136448,
        0x4128000000000000,
        true,
    ),
    (
        "CRC-8",
        "pLUTo-GSA",
        "3DS",
        3660893912,
        0x41d2d8c711000000,
        136448,
        0x40d8000000000000,
        true,
    ),
    (
        "CRC-8",
        "pLUTo-GMC",
        "DDR4",
        2954913280,
        0x41e8828e22000000,
        136448,
        0x4128000000000000,
        true,
    ),
    (
        "CRC-8",
        "pLUTo-GMC",
        "3DS",
        2141245144,
        0x41c8828e22000000,
        136448,
        0x40d8000000000000,
        true,
    ),
    (
        "CRC-16",
        "pLUTo-BSA",
        "DDR4",
        11737205760,
        0x4205705a11000000,
        272896,
        0x4128000000000000,
        true,
    ),
    (
        "CRC-16",
        "pLUTo-BSA",
        "3DS",
        8505235888,
        0x41e5705a11000000,
        272896,
        0x40d8000000000000,
        true,
    ),
    (
        "CRC-16",
        "pLUTo-GSA",
        "DDR4",
        12234050560,
        0x420631b611000000,
        272896,
        0x4128000000000000,
        true,
    ),
    (
        "CRC-16",
        "pLUTo-GSA",
        "3DS",
        8865181104,
        0x41e631b611000000,
        272896,
        0x40d8000000000000,
        true,
    ),
    (
        "CRC-16",
        "pLUTo-GMC",
        "DDR4",
        8039746560,
        0x41ff346c22000000,
        272896,
        0x4128000000000000,
        true,
    ),
    (
        "CRC-16",
        "pLUTo-GMC",
        "3DS",
        5825883568,
        0x41df346c22000000,
        272896,
        0x40d8000000000000,
        true,
    ),
    (
        "CRC-32",
        "pLUTo-BSA",
        "DDR4",
        31994091520,
        0x421c223811000000,
        545792,
        0x4128000000000000,
        true,
    ),
    (
        "CRC-32",
        "pLUTo-BSA",
        "3DS",
        23184044896,
        0x41fc223811000000,
        545792,
        0x40d8000000000000,
        true,
    ),
    (
        "CRC-32",
        "pLUTo-GSA",
        "DDR4",
        32987781120,
        0x421ce39411000000,
        545792,
        0x4128000000000000,
        true,
    ),
    (
        "CRC-32",
        "pLUTo-GSA",
        "3DS",
        23903935328,
        0x41fce39411000000,
        545792,
        0x40d8000000000000,
        true,
    ),
    (
        "CRC-32",
        "pLUTo-GMC",
        "DDR4",
        24599173120,
        0x42164c1411000000,
        545792,
        0x4128000000000000,
        true,
    ),
    (
        "CRC-32",
        "pLUTo-GMC",
        "3DS",
        17825340256,
        0x41f64c1411000000,
        545792,
        0x40d8000000000000,
        true,
    ),
    (
        "Salsa20",
        "pLUTo-BSA",
        "DDR4",
        73323397120,
        0x4232007794000000,
        2714112,
        0x4108000000000000,
        true,
    ),
    (
        "Salsa20",
        "pLUTo-BSA",
        "3DS",
        53133535744,
        0x4212007794000000,
        2714112,
        0x40b8000000000000,
        true,
    ),
    (
        "Salsa20",
        "pLUTo-GSA",
        "DDR4",
        78175641600,
        0x4232ecac54000000,
        2714112,
        0x4108000000000000,
        true,
    ),
    (
        "Salsa20",
        "pLUTo-GSA",
        "3DS",
        56648818688,
        0x4212ecac54000000,
        2714112,
        0x40b8000000000000,
        true,
    ),
    (
        "Salsa20",
        "pLUTo-GMC",
        "DDR4",
        37936537600,
        0x422609fba8000000,
        2714112,
        0x4108000000000000,
        true,
    ),
    (
        "Salsa20",
        "pLUTo-GMC",
        "3DS",
        27490557952,
        0x420609fba8000000,
        2714112,
        0x40b8000000000000,
        true,
    ),
    (
        "VMPC",
        "pLUTo-BSA",
        "DDR4",
        29208960,
        0x417d7d1280000000,
        1028,
        0x40b8000000000000,
        true,
    ),
    (
        "VMPC",
        "pLUTo-BSA",
        "3DS",
        21166180,
        0x415d7d1280000000,
        1028,
        0x4068000000000000,
        true,
    ),
    (
        "VMPC",
        "pLUTo-GSA",
        "DDR4",
        31149760,
        0x417effca80000000,
        1028,
        0x40b8000000000000,
        true,
    ),
    (
        "VMPC",
        "pLUTo-GSA",
        "3DS",
        22572216,
        0x415effca80000000,
        1028,
        0x4068000000000000,
        true,
    ),
    (
        "VMPC",
        "pLUTo-GMC",
        "DDR4",
        14765760,
        0x4171d0ca80000000,
        1028,
        0x40b8000000000000,
        true,
    ),
    (
        "VMPC",
        "pLUTo-GMC",
        "3DS",
        10699960,
        0x4151d0ca80000000,
        1028,
        0x4068000000000000,
        true,
    ),
    (
        "ImgBin",
        "pLUTo-BSA",
        "DDR4",
        21882720,
        0x417618dc40000000,
        771,
        0x40d2000000000000,
        true,
    ),
    (
        "ImgBin",
        "pLUTo-BSA",
        "3DS",
        15857244,
        0x415618dc40000000,
        771,
        0x4082000000000000,
        true,
    ),
    (
        "ImgBin",
        "pLUTo-GSA",
        "DDR4",
        23338320,
        0x41773ae640000000,
        771,
        0x40d2000000000000,
        true,
    ),
    (
        "ImgBin",
        "pLUTo-GSA",
        "3DS",
        16911771,
        0x41573ae640000000,
        771,
        0x4082000000000000,
        true,
    ),
    (
        "ImgBin",
        "pLUTo-GMC",
        "DDR4",
        11050320,
        0x416aaf4c80000000,
        771,
        0x40d2000000000000,
        true,
    ),
    (
        "ImgBin",
        "pLUTo-GMC",
        "3DS",
        8007579,
        0x414aaf4c80000000,
        771,
        0x4082000000000000,
        true,
    ),
    (
        "ColorGrade",
        "pLUTo-BSA",
        "DDR4",
        21978720,
        0x41762ca2c0000000,
        771,
        0x40d2000000000000,
        true,
    ),
    (
        "ColorGrade",
        "pLUTo-BSA",
        "3DS",
        15926808,
        0x41562ca2c0000000,
        771,
        0x4082000000000000,
        true,
    ),
    (
        "ColorGrade",
        "pLUTo-GSA",
        "DDR4",
        23434320,
        0x41774eacc0000000,
        771,
        0x40d2000000000000,
        true,
    ),
    (
        "ColorGrade",
        "pLUTo-GSA",
        "3DS",
        16981335,
        0x41574eacc0000000,
        771,
        0x4082000000000000,
        true,
    ),
    (
        "ColorGrade",
        "pLUTo-GMC",
        "DDR4",
        11146320,
        0x416ad6d980000000,
        771,
        0x40d2000000000000,
        true,
    ),
    (
        "ColorGrade",
        "pLUTo-GMC",
        "3DS",
        8077143,
        0x414ad6d980000000,
        771,
        0x4082000000000000,
        true,
    ),
    (
        "ADD4",
        "pLUTo-BSA",
        "DDR4",
        7294240,
        0x415d767b00000000,
        276,
        0x40b8000000000000,
        true,
    ),
    (
        "ADD4",
        "pLUTo-BSA",
        "3DS",
        5285748,
        0x413d767b00000000,
        276,
        0x4068000000000000,
        true,
    ),
    (
        "ADD4",
        "pLUTo-GSA",
        "DDR4",
        7779440,
        0x415ef93300000000,
        276,
        0x40b8000000000000,
        true,
    ),
    (
        "ADD4",
        "pLUTo-GSA",
        "3DS",
        5637257,
        0x413ef93300000000,
        276,
        0x4068000000000000,
        true,
    ),
    (
        "ADD4",
        "pLUTo-GMC",
        "DDR4",
        3683440,
        0x4151ca3300000000,
        276,
        0x40b8000000000000,
        true,
    ),
    (
        "ADD4",
        "pLUTo-GMC",
        "3DS",
        2669193,
        0x4131ca3300000000,
        276,
        0x4068000000000000,
        true,
    ),
    (
        "ADD8",
        "pLUTo-BSA",
        "DDR4",
        26113280,
        0x417a469000000000,
        968,
        0x40c8000000000000,
        true,
    ),
    (
        "ADD8",
        "pLUTo-BSA",
        "3DS",
        18922896,
        0x415a469000000000,
        968,
        0x4078000000000000,
        true,
    ),
    (
        "ADD8",
        "pLUTo-GSA",
        "DDR4",
        27875200,
        0x417ba62000000000,
        968,
        0x40c8000000000000,
        true,
    ),
    (
        "ADD8",
        "pLUTo-GSA",
        "3DS",
        20199352,
        0x415ba62000000000,
        968,
        0x4078000000000000,
        true,
    ),
    (
        "ADD8",
        "pLUTo-GMC",
        "DDR4",
        13539200,
        0x41701d0000000000,
        968,
        0x40c8000000000000,
        true,
    ),
    (
        "ADD8",
        "pLUTo-GMC",
        "3DS",
        9811128,
        0x41501d0000000000,
        968,
        0x4078000000000000,
        true,
    ),
    (
        "MUL8",
        "pLUTo-BSA",
        "DDR4",
        453499840,
        0x41bc5c5c58000000,
        16234,
        0x40c8000000000000,
        true,
    ),
    (
        "MUL8",
        "pLUTo-BSA",
        "3DS",
        328626784,
        0x419c5c5c58000000,
        16234,
        0x4078000000000000,
        true,
    ),
    (
        "MUL8",
        "pLUTo-GSA",
        "DDR4",
        483134240,
        0x41bdcdde18000000,
        16234,
        0x40c8000000000000,
        true,
    ),
    (
        "MUL8",
        "pLUTo-GSA",
        "3DS",
        350095958,
        0x419dcdde18000000,
        16234,
        0x4078000000000000,
        true,
    ),
    (
        "MUL8",
        "pLUTo-GMC",
        "DDR4",
        240958240,
        0x41b19ff298000000,
        16234,
        0x40c8000000000000,
        true,
    ),
    (
        "MUL8",
        "pLUTo-GMC",
        "3DS",
        174609174,
        0x41919ff298000000,
        16234,
        0x4078000000000000,
        true,
    ),
    (
        "MUL16",
        "pLUTo-BSA",
        "DDR4",
        2371688000,
        0x41e28cf2f5000000,
        85218,
        0x40c0000000000000,
        true,
    ),
    (
        "MUL16",
        "pLUTo-BSA",
        "3DS",
        1718634048,
        0x41c28cf2f5000000,
        85218,
        0x4070000000000000,
        true,
    ),
    (
        "MUL16",
        "pLUTo-GSA",
        "DDR4",
        2527086560,
        0x41e37f26dd000000,
        85218,
        0x40c0000000000000,
        true,
    ),
    (
        "MUL16",
        "pLUTo-GSA",
        "3DS",
        1831215322,
        0x41c37f26dd000000,
        85218,
        0x4070000000000000,
        true,
    ),
    (
        "MUL16",
        "pLUTo-GMC",
        "DDR4",
        1256814560,
        0x41d705bdda000000,
        85218,
        0x40c0000000000000,
        true,
    ),
    (
        "MUL16",
        "pLUTo-GMC",
        "3DS",
        910744474,
        0x41b705bdda000000,
        85218,
        0x4070000000000000,
        true,
    ),
    (
        "BC-4",
        "pLUTo-BSA",
        "DDR4",
        497440,
        0x411ff3b000000000,
        17,
        0x40a8000000000000,
        true,
    ),
    (
        "BC-4",
        "pLUTo-BSA",
        "3DS",
        360468,
        0x40fff3b000000000,
        17,
        0x4058000000000000,
        true,
    ),
    (
        "BC-4",
        "pLUTo-GSA",
        "DDR4",
        541040,
        0x4121131800000000,
        17,
        0x40a8000000000000,
        true,
    ),
    (
        "BC-4",
        "pLUTo-GSA",
        "3DS",
        392057,
        0x4101131800000000,
        17,
        0x4058000000000000,
        true,
    ),
    (
        "BC-4",
        "pLUTo-GMC",
        "DDR4",
        285040,
        0x4114f73000000000,
        17,
        0x40a8000000000000,
        true,
    ),
    (
        "BC-4",
        "pLUTo-GMC",
        "3DS",
        206553,
        0x40f4f73000000000,
        17,
        0x4058000000000000,
        true,
    ),
    (
        "BC-8",
        "pLUTo-BSA",
        "DDR4",
        7294240,
        0x415d767b00000000,
        257,
        0x40b8000000000000,
        true,
    ),
    (
        "BC-8",
        "pLUTo-BSA",
        "3DS",
        5285748,
        0x413d767b00000000,
        257,
        0x4068000000000000,
        true,
    ),
    (
        "BC-8",
        "pLUTo-GSA",
        "DDR4",
        7779440,
        0x415ef93300000000,
        257,
        0x40b8000000000000,
        true,
    ),
    (
        "BC-8",
        "pLUTo-GSA",
        "3DS",
        5637257,
        0x413ef93300000000,
        257,
        0x4068000000000000,
        true,
    ),
    (
        "BC-8",
        "pLUTo-GMC",
        "DDR4",
        3683440,
        0x4151ca3300000000,
        257,
        0x40b8000000000000,
        true,
    ),
    (
        "BC-8",
        "pLUTo-GMC",
        "3DS",
        2669193,
        0x4131ca3300000000,
        257,
        0x4068000000000000,
        true,
    ),
    (
        "Bitwise",
        "pLUTo-BSA",
        "DDR4",
        1260800,
        0x4133f56000000000,
        144,
        0x40c8000000000000,
        true,
    ),
    (
        "Bitwise",
        "pLUTo-BSA",
        "3DS",
        913632,
        0x4113f56000000000,
        144,
        0x4078000000000000,
        true,
    ),
    (
        "Bitwise",
        "pLUTo-GSA",
        "DDR4",
        1432960,
        0x413627e000000000,
        144,
        0x40c8000000000000,
        true,
    ),
    (
        "Bitwise",
        "pLUTo-GSA",
        "3DS",
        1038376,
        0x411627e000000000,
        144,
        0x4078000000000000,
        true,
    ),
    (
        "Bitwise",
        "pLUTo-GMC",
        "DDR4",
        920960,
        0x412f20c000000000,
        144,
        0x40c8000000000000,
        true,
    ),
    (
        "Bitwise",
        "pLUTo-GMC",
        "3DS",
        667368,
        0x410f20c000000000,
        144,
        0x4078000000000000,
        true,
    ),
];

/// The acceptance gate: every `CostReport` of the full workload registry ×
/// 3 designs × 2 memory kinds is bit-identical to the pre-refactor golden
/// values (time in integer picoseconds; energy and paper-byte volumes
/// compared on raw `f64` bits).
#[test]
fn cost_reports_match_pre_refactor_golden_values() {
    let mut checked = 0usize;
    for &(workload, design_s, kind_s, time_ps, energy_bits, acts, bytes_bits, validated) in &GOLDEN
    {
        let design = DesignKind::ALL
            .into_iter()
            .find(|d| d.to_string() == design_s)
            .unwrap_or_else(|| panic!("unknown design {design_s}"));
        let kind = match kind_s {
            "DDR4" => MemoryKind::Ddr4,
            _ => MemoryKind::Stacked3d,
        };
        let id = WorkloadId::CANONICAL
            .into_iter()
            .find(|id| id.to_string() == workload)
            .unwrap_or_else(|| panic!("unknown workload {workload}"));
        if skip_in_quick_mode(id) {
            continue;
        }
        let config = ExecConfig::measurement_on(design, kind);
        let mut w = workload_for(id);
        let report = Session::with_config(config)
            .unwrap()
            .run(w.as_mut())
            .unwrap_or_else(|e| panic!("{workload} on {design_s}/{kind_s}: {e}"));
        let label = format!("{workload} on {design_s}/{kind_s}");
        assert_eq!(report.time.as_ps(), time_ps, "time of {label}");
        assert_eq!(
            report.energy.as_pj().to_bits(),
            energy_bits,
            "energy of {label}"
        );
        assert_eq!(report.acts, acts, "acts of {label}");
        assert_eq!(
            report.paper_bytes.to_bits(),
            bytes_bits,
            "paper_bytes of {label}"
        );
        assert_eq!(report.validated, validated, "validated of {label}");
        checked += 1;
    }
    assert!(checked >= 66, "golden coverage shrank: {checked} rows");
}
