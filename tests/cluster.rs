//! Integration tests of the sharded parallel executor (`DESIGN.md` §6):
//! cluster runs over the full workload registry are bit-identical to
//! serial `Session` runs on both memory kinds, independent of submission
//! order and worker count, and shard fan-out reduces to the exact serial
//! shard fold.

use pluto_repro::baselines::WorkloadId;
use pluto_repro::core::cluster::Cluster;
use pluto_repro::core::session::{CostReport, ExecConfig, Session, Workload};
use pluto_repro::core::DesignKind;
use pluto_repro::dram::MemoryKind;
use pluto_repro::workloads::{
    bitcount::BitcountWorkload, crc::CrcSpec, crc::CrcWorkload, direct::Gamma12Workload,
    direct::MulDirect8Workload, image::BinarizeWorkload, image::GradeWorkload, registry,
    vecops::AddWorkload, vecops::QMulWorkload, workload_for,
};
use sim_support::{Rng, SeedableRng, StdRng};

/// `PLUTO_QUICK=1` (the CI smoke configuration) skips the three
/// long-running measurement workloads; a plain `cargo test` covers the
/// full registry.
fn skip_in_quick_mode(id: &str) -> bool {
    let quick = std::env::var("PLUTO_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false);
    quick && ["CRC-16", "CRC-32", "Salsa20"].contains(&id)
}

fn exec_config(design: DesignKind, kind: MemoryKind) -> ExecConfig {
    ExecConfig::measurement_on(design, kind)
}

/// Serial baseline: one fresh `Session::run` per workload.
fn serial_report(config: &ExecConfig, workload: &mut dyn Workload) -> CostReport {
    Session::with_config(config.clone())
        .unwrap()
        .run(workload)
        .unwrap_or_else(|e| panic!("serial {}: {e}", workload.id()))
}

/// The registry with quick-mode filtering applied.
fn quick_registry() -> Vec<Box<dyn Workload>> {
    registry()
        .into_iter()
        .filter(|w| !skip_in_quick_mode(w.id()))
        .collect()
}

/// The tentpole invariant: a parallel `run_all` over the full registry is
/// bit-identical — `time`, `energy`, `acts`, `paper_bytes`, `validated`,
/// every field — to serial `Session` runs, on both memory kinds.
#[test]
fn full_registry_parallel_matches_serial_on_both_kinds() {
    for kind in [MemoryKind::Ddr4, MemoryKind::Stacked3d] {
        let config = exec_config(DesignKind::Gmc, kind);
        let mut cluster = Cluster::new(4);
        let parallel = cluster
            .run_all(&config, quick_registry())
            .unwrap_or_else(|e| panic!("cluster registry run on {kind}: {e}"));
        let serial: Vec<CostReport> = quick_registry()
            .iter_mut()
            .map(|w| serial_report(&config, w.as_mut()))
            .collect();
        assert_eq!(parallel.len(), serial.len());
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(p, s, "{} on {kind}", s.workload);
            assert!(p.validated, "{} on {kind}", s.workload);
        }
    }
}

/// Submission order is the only order that matters: a seeded shuffle of
/// the (workload, kind) job list returns each job's serial-identical
/// report at its (shuffled) submission slot.
#[test]
fn seeded_shuffle_submission_order_is_bit_identical() {
    let ids = [
        WorkloadId::Vmpc,
        WorkloadId::ImgBin,
        WorkloadId::ColorGrade,
        WorkloadId::Add4,
        WorkloadId::Bc8,
        WorkloadId::BitwiseRow,
    ];
    let mut jobs: Vec<(WorkloadId, MemoryKind)> = ids
        .iter()
        .flat_map(|&id| {
            [MemoryKind::Ddr4, MemoryKind::Stacked3d]
                .into_iter()
                .map(move |kind| (id, kind))
        })
        .collect();
    // Fisher–Yates with the deterministic sim-support generator.
    let mut rng = StdRng::seed_from_u64(0xC1D5);
    for i in (1..jobs.len()).rev() {
        let j = rng.gen_range(0..=i);
        jobs.swap(i, j);
    }

    let mut cluster = Cluster::new(3);
    for &(id, kind) in &jobs {
        cluster.submit(exec_config(DesignKind::Bsa, kind), workload_for(id));
    }
    let reports = cluster.run().unwrap();
    for (report, &(id, kind)) in reports.iter().zip(&jobs) {
        let config = exec_config(DesignKind::Bsa, kind);
        let serial = serial_report(&config, workload_for(id).as_mut());
        assert_eq!(*report, serial, "{id} on {kind} (shuffled submission)");
    }
}

/// Worker count is invisible in the results (only in wall-clock time).
#[test]
fn worker_count_does_not_change_registry_results() {
    let ids = [WorkloadId::Bc4, WorkloadId::ImgBin, WorkloadId::BitwiseRow];
    let run = |workers| {
        let mut cluster = Cluster::new(workers);
        for &id in &ids {
            cluster.submit(
                exec_config(DesignKind::Gmc, MemoryKind::Ddr4),
                workload_for(id),
            );
        }
        cluster.run().unwrap()
    };
    assert_eq!(run(1), run(4));
}

/// Shard fan-out for the input-sharded scenarios: one oversize batch
/// splits across workers and reduces — in shard order — to the exact
/// report a serial shard-by-shard fold produces, with validation intact.
#[test]
fn sharded_batches_reduce_to_the_serial_shard_fold() {
    // (label, copy submitted to the cluster, copy folded serially).
    type Case = (&'static str, Box<dyn Workload>, Box<dyn Workload>);
    let large: Vec<Case> = vec![
        (
            "ADD4x5",
            Box::new(AddWorkload::with_batch(4, 5 * 192)),
            Box::new(AddWorkload::with_batch(4, 5 * 192)),
        ),
        (
            "MUL8x3",
            Box::new(QMulWorkload::with_batch(7, 3 * 192)),
            Box::new(QMulWorkload::with_batch(7, 3 * 192)),
        ),
        (
            "BC8x4",
            Box::new(BitcountWorkload::with_batch(8, 4 * 192)),
            Box::new(BitcountWorkload::with_batch(8, 4 * 192)),
        ),
        (
            "ImgBinx3",
            Box::new(BinarizeWorkload::with_pixels(3 * 192)),
            Box::new(BinarizeWorkload::with_pixels(3 * 192)),
        ),
        (
            "ColorGradex3",
            Box::new(GradeWorkload::with_pixels(3 * 192)),
            Box::new(GradeWorkload::with_pixels(3 * 192)),
        ),
        (
            "CRC8x1.25",
            Box::new(CrcWorkload::with_packets(CrcSpec::CRC8, 240)),
            Box::new(CrcWorkload::with_packets(CrcSpec::CRC8, 240)),
        ),
        // The §5.6 partitioned-LUT scenarios: shard determinism must hold
        // when every shard routes through the multi-segment data path.
        (
            "Gamma12x3",
            Box::new(Gamma12Workload::with_batch(3 * 192)),
            Box::new(Gamma12Workload::with_batch(3 * 192)),
        ),
        (
            "MulDirect8x2",
            Box::new(MulDirect8Workload::with_batch(2 * 192)),
            Box::new(MulDirect8Workload::with_batch(2 * 192)),
        ),
    ];
    let config = exec_config(DesignKind::Gmc, MemoryKind::Ddr4);
    let mut cluster = Cluster::new(4);
    let mut expected = Vec::new();
    for (label, parallel_copy, serial_copy) in large {
        let shards = serial_copy.shards();
        assert!(shards.len() >= 2, "{label}: expected real fan-out");
        cluster.submit_sharded(config.clone(), parallel_copy);
        let mut fold: Option<CostReport> = None;
        for mut shard in shards {
            let r = serial_report(&config, shard.as_mut());
            match fold.as_mut() {
                None => fold = Some(r),
                Some(acc) => acc.absorb(&r),
            }
        }
        expected.push((label, fold.unwrap()));
    }
    let reduced = cluster.run().unwrap();
    for (report, (label, expect)) in reduced.iter().zip(&expected) {
        assert_eq!(report, expect, "{label}");
        assert!(report.validated, "{label}");
    }
}

/// The packed-row cache regression guard: submitting the *same* workload
/// twice to a single-worker cluster reuses one pooled machine (the second
/// run resets it in place) and — after PR 4 — serves its LUT store loads
/// from the packed-row cache. Both runs must be bit-identical to a
/// fresh-machine serial run: a stale or aliased cached row would corrupt
/// the second run's outputs and flip `validated`.
#[test]
fn pooled_machine_with_cached_lut_store_matches_fresh_runs() {
    for design in [DesignKind::Gsa, DesignKind::Gmc] {
        let config = exec_config(design, MemoryKind::Ddr4);
        let mut cluster = Cluster::new(1);
        cluster.submit(config.clone(), workload_for(WorkloadId::Bc8));
        cluster.submit(config.clone(), workload_for(WorkloadId::Bc8));
        let reports = cluster.run().unwrap();
        let fresh = serial_report(&config, workload_for(WorkloadId::Bc8).as_mut());
        assert_eq!(reports.len(), 2);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(*r, fresh, "{design} pooled run {i} diverged from fresh");
            assert!(r.validated, "{design} pooled run {i}");
        }
    }
}

/// Sharding preserves the workload's total input volume: the reduced
/// paper-byte count of an N-tile batch equals N times one tile.
#[test]
fn sharded_volume_accounting_is_exact() {
    let config = exec_config(DesignKind::Bsa, MemoryKind::Ddr4);
    let mut tile = BitcountWorkload::with_batch(8, 192);
    let one_tile = serial_report(&config, &mut tile);
    let mut cluster = Cluster::new(2);
    cluster.submit_sharded(config, Box::new(BitcountWorkload::with_batch(8, 6 * 192)));
    let reduced = cluster.run().unwrap().remove(0);
    assert!((reduced.paper_bytes - 6.0 * one_tile.paper_bytes).abs() < 1e-9);
    assert_eq!(reduced.acts, 6 * one_tile.acts);
}
