//! Integration tests of the unified `Session`/`Workload` execution API
//! (`DESIGN.md` §5): full-registry coverage on both memory kinds, the
//! paper-row scaling invariant, batching, and the composition guarantees
//! the old thread-local implementation could not give.

use pluto_repro::baselines::WorkloadId;
use pluto_repro::core::session::{CostReport, Session, Workload};
use pluto_repro::core::DesignKind;
use pluto_repro::dram::MemoryKind;
use pluto_repro::workloads::{registry, workload_for};

/// `PLUTO_QUICK=1` (the CI smoke configuration) skips the three
/// long-running measurement workloads; a plain `cargo test` covers the
/// full registry.
fn skip_in_quick_mode(id: &str) -> bool {
    let quick = std::env::var("PLUTO_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false);
    quick && ["CRC-16", "CRC-32", "Salsa20"].contains(&id)
}

fn run_workload(id: WorkloadId, design: DesignKind, kind: MemoryKind) -> CostReport {
    let mut workload = workload_for(id);
    let mut session = Session::builder(design)
        .memory(kind)
        .build()
        .unwrap_or_else(|e| panic!("session for {id}: {e}"));
    session
        .run(workload.as_mut())
        .unwrap_or_else(|e| panic!("{id} on {design}/{kind}: {e}"))
}

/// Every registry workload validates under both memory kinds, and the
/// reported byte volume obeys the paper-row scaling invariant: ×32 on
/// DDR4 (8 KiB paper rows over 256 B measurement rows), ×1 on 3DS (whose
/// rows are 256 B to begin with).
#[test]
fn registry_validates_on_both_memory_kinds_with_row_scaling() {
    for kind in [MemoryKind::Ddr4, MemoryKind::Stacked3d] {
        let mut session = Session::builder(DesignKind::Gmc)
            .memory(kind)
            .build()
            .unwrap();
        let expect_ratio = match kind {
            MemoryKind::Ddr4 => 32.0,
            MemoryKind::Stacked3d => 1.0,
        };
        for mut workload in registry() {
            if skip_in_quick_mode(workload.id()) {
                continue;
            }
            let report = session.run(workload.as_mut()).unwrap_or_else(|e| {
                panic!("{} on {kind}: {e}", workload.id());
            });
            assert!(report.validated, "{} on {kind}", report.workload);
            assert_eq!(report.kind, kind);
            let expect = workload.input_bytes() * expect_ratio;
            assert!(
                (report.paper_bytes - expect).abs() < 1e-9,
                "{} on {kind}: paper_bytes {} != input_bytes {} x {expect_ratio}",
                report.workload,
                report.paper_bytes,
                workload.input_bytes()
            );
        }
    }
}

/// Regression for the old `measure_on` nesting bug (it restored
/// `MemoryKind::Ddr4` unconditionally instead of the previous value):
/// with explicit sessions, interleaving and nesting configurations of
/// different memory kinds composes — no run perturbs any other.
#[test]
fn interleaved_and_nested_sessions_compose() {
    let first = run_workload(WorkloadId::Bc4, DesignKind::Gmc, MemoryKind::Ddr4);
    let inner = run_workload(WorkloadId::Bc4, DesignKind::Gmc, MemoryKind::Stacked3d);
    let second = run_workload(WorkloadId::Bc4, DesignKind::Gmc, MemoryKind::Ddr4);
    assert_eq!(first, second, "interleaved 3DS run perturbed DDR4 results");
    assert_eq!(inner.kind, MemoryKind::Stacked3d);

    // Nested: an outer session stays live while an inner session of the
    // other kind runs between its two (identical) runs.
    let mut outer = Session::builder(DesignKind::Bsa).build().unwrap();
    let mut workload = workload_for(WorkloadId::BitwiseRow);
    let before = outer.run(workload.as_mut()).unwrap();
    let mut inner_session = Session::builder(DesignKind::Bsa)
        .memory(MemoryKind::Stacked3d)
        .build()
        .unwrap();
    inner_session
        .run(workload_for(WorkloadId::BitwiseRow).as_mut())
        .unwrap();
    let after = outer.run(workload.as_mut()).unwrap();
    assert_eq!(before, after, "nested session perturbed the outer session");
}

/// `run_all` batching is pure composition: each batched report is
/// bit-identical to the same workload measured alone, and the session
/// accumulates the reports in order.
#[test]
fn batched_run_all_matches_individual_runs() {
    let ids = [
        WorkloadId::Vmpc,
        WorkloadId::ImgBin,
        WorkloadId::Bc8,
        WorkloadId::BitwiseRow,
    ];
    let mut workloads: Vec<Box<dyn Workload>> = ids.iter().map(|&id| workload_for(id)).collect();
    let mut session = Session::builder(DesignKind::Bsa).build().unwrap();
    let batch = session.run_all(&mut workloads).unwrap();
    assert_eq!(batch, session.reports());
    for (report, &id) in batch.iter().zip(&ids) {
        let single = run_workload(id, DesignKind::Bsa, MemoryKind::Ddr4);
        assert_eq!(*report, single, "{id}");
        assert_eq!(report.workload, id.label());
    }
}

/// The registry enumerates exactly the canonical workloads, each under
/// its canonical label, and alias ids resolve to the same scenario.
#[test]
fn registry_matches_canonical_ids() {
    let labels: Vec<&'static str> = registry().iter().map(|w| w.id()).collect();
    let expect: Vec<&'static str> = WorkloadId::CANONICAL
        .into_iter()
        .map(WorkloadId::label)
        .collect();
    assert_eq!(labels, expect);
    assert_eq!(
        workload_for(WorkloadId::MulQ1_7).id(),
        WorkloadId::Mul8.label()
    );
    assert_eq!(
        workload_for(WorkloadId::MulQ1_15).id(),
        WorkloadId::Mul16.label()
    );
}
