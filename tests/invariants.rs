//! Property-based tests of the core invariants (sim-support harness).

use pluto_repro::core::lut::{pack_slots, slots_per_row, unpack_slots, Lut};
use pluto_repro::core::match_logic;
use pluto_repro::core::prelude::*;
use pluto_repro::dram::{DramConfig, Engine, RowLoc};
use pluto_repro::workloads::crc::{contribution_table, crc_bitwise, CrcSpec};
use pluto_repro::workloads::vecops;
use sim_support::prop::{self, Gen};
use sim_support::{prop_assert, prop_assert_eq};

const CASES: u32 = 48;

fn small_cfg() -> DramConfig {
    DramConfig {
        row_bytes: 64,
        burst_bytes: 8,
        banks: 2,
        subarrays_per_bank: 16,
        rows_per_subarray: 512,
        ..DramConfig::ddr4_2400()
    }
}

/// Any LUT query on any design returns exactly `lut.apply_all`.
#[test]
fn query_equals_software_semantics() {
    prop::check("query_equals_software_semantics", CASES, |g: &mut Gen| {
        let seed: u64 = g.any();
        let input_bits: u32 = g.range(1u32..6);
        let design_idx: usize = g.range(0usize..3);
        let design = DesignKind::ALL[design_idx];
        let n = 1usize << input_bits;
        let elements: Vec<u64> = (0..n as u64)
            .map(|i| (i.wrapping_mul(seed | 1)) & 0xF)
            .collect();
        let lut = Lut::from_table("prop", input_bits, 4, elements).unwrap();
        let mut machine = PlutoMachine::new(small_cfg(), design).unwrap();
        let inputs: Vec<u64> = (0..30u64)
            .map(|i| (i.wrapping_add(seed)) % n as u64)
            .collect();
        let got = machine.apply(&lut, &inputs).unwrap().values;
        let expect = lut.apply_all(&inputs).unwrap();
        prop_assert_eq!(got, expect);
        Ok(())
    });
}

/// Row packing round-trips for every slot width.
#[test]
fn pack_unpack_roundtrip() {
    prop::check("pack_unpack_roundtrip", CASES, |g| {
        let slot_bits: u32 = g.range(1u32..17);
        let seed: u64 = g.any();
        let capacity = slots_per_row(64, slot_bits);
        let mask = if slot_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << slot_bits) - 1
        };
        let values: Vec<u64> = (0..capacity as u64)
            .map(|i| i.wrapping_mul(seed | 3) & mask)
            .collect();
        let row = pack_slots(&values, slot_bits, 64).unwrap();
        prop_assert_eq!(unpack_slots(&row, slot_bits, values.len()), values);
        Ok(())
    });
}

/// Over a full sweep, each in-range input matches exactly once.
#[test]
fn match_exactly_once() {
    prop::check("match_exactly_once", CASES, |g| {
        let inputs: Vec<u64> = g.vec_range(1, 63, 0u64..32);
        let total: usize = (0..32u64)
            .map(|row| match_logic::matched_positions(&inputs, row).count())
            .sum();
        prop_assert_eq!(total, inputs.len());
        prop_assert!(match_logic::each_element_matches_exactly_once(&inputs, 32));
        Ok(())
    });
}

/// CRC linearity: the per-position contribution decomposition equals
/// the serial CRC for every packet (the pLUTo mapping's foundation).
#[test]
fn crc_linearity() {
    prop::check("crc_linearity", CASES, |g| {
        let packet: Vec<u8> = g.vec_any(1, 23);
        for spec in [CrcSpec::CRC8, CrcSpec::CRC16, CrcSpec::CRC32] {
            let folded = (0..packet.len()).fold(0u64, |acc, i| {
                acc ^ contribution_table(spec, packet.len(), i)[packet[i] as usize]
            });
            prop_assert_eq!(folded, crc_bitwise(spec, &packet));
        }
        Ok(())
    });
}

/// Q1.7 fixed-point multiply: reference semantics match i64 math.
#[test]
fn qmul_reference_is_signed_product() {
    prop::check("qmul_reference_is_signed_product", CASES, |g| {
        let a: u64 = g.range(0u64..256);
        let b: u64 = g.range(0u64..256);
        let out = vecops::qmul_reference(7, &[a], &[b])[0];
        let sa = (a as i64) << 56 >> 56;
        let sb = (b as i64) << 56 >> 56;
        let expect = (((sa * sb) >> 7) as u64) & 0xFF;
        prop_assert_eq!(out, expect);
        Ok(())
    });
}

/// RowClone-FPM copies are exact and preserve the source.
#[test]
fn rowclone_preserves_and_copies() {
    prop::check("rowclone_preserves_and_copies", CASES, |g| {
        let data: Vec<u8> = g.vec_any(64, 64);
        let mut e = Engine::new(small_cfg());
        let src = RowLoc::new(0, 1, 3);
        e.poke_row(src, &data).unwrap();
        e.row_clone_fpm(src, pluto_repro::dram::RowId(9)).unwrap();
        prop_assert_eq!(e.peek_row(src).unwrap(), data.clone());
        prop_assert_eq!(e.peek_row(src.with_row(9)).unwrap(), data);
        Ok(())
    });
}

/// Ambit majority is idempotent on three equal rows and symmetric.
#[test]
fn ambit_majority_properties() {
    prop::check("ambit_majority_properties", CASES, |g| {
        let a: Vec<u8> = g.vec_any(64, 64);
        let b: Vec<u8> = g.vec_any(64, 64);
        let c: Vec<u8> = g.vec_any(64, 64);
        use pluto_repro::dram::{BankId, RowId, SubarrayId};
        let run = |x: &[u8], y: &[u8], z: &[u8]| -> Vec<u8> {
            let mut e = Engine::new(small_cfg());
            e.poke_row(RowLoc::new(0, 0, 0), x).unwrap();
            e.poke_row(RowLoc::new(0, 0, 1), y).unwrap();
            e.poke_row(RowLoc::new(0, 0, 2), z).unwrap();
            e.triple_row_activate(BankId(0), SubarrayId(0), [RowId(0), RowId(1), RowId(2)])
                .unwrap();
            e.peek_row(RowLoc::new(0, 0, 0)).unwrap()
        };
        prop_assert_eq!(run(&a, &a, &a), a.clone());
        prop_assert_eq!(run(&a, &b, &c), run(&c, &a, &b));
        Ok(())
    });
}

/// The GSA/GMC sweep-latency advantage over BSA approaches (but never
/// reaches) 2x as N grows — the paper's footnote 3.
#[test]
fn sweep_ratio_bounded_by_two() {
    prop::check("sweep_ratio_bounded_by_two", CASES, |g| {
        let n: u64 = g.range(1u64..2048);
        let t = pluto_repro::dram::TimingParams::ddr4_2400();
        let e = pluto_repro::dram::EnergyModel::ddr4();
        let bsa = DesignModel::new(DesignKind::Bsa, t.clone(), e.clone());
        let gmc = DesignModel::new(DesignKind::Gmc, t, e);
        let ratio = bsa.sweep_latency(n).as_ns() / gmc.sweep_latency(n).as_ns();
        prop_assert!(ratio > 1.0 && ratio < 2.0, "ratio {} at n={}", ratio, n);
        Ok(())
    });
}
