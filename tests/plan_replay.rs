//! Differential suite for the compiled query-plan cache (`DESIGN.md`
//! §10): warm-plan replay must be indistinguishable from the full
//! issuing path at every observable level — output words, `QueryCost` /
//! `PartitionedCost` breakdowns, engine clock, energy (compared on raw
//! `f64` bits), command counters, and committed DRAM rows — across all
//! three designs × both memory kinds × varied tFAW scales × interleaved
//! LUTs, cold and warm, including GSA's reload-per-query stores and
//! 128-segment partitioned queries. Non-replayable contexts (command
//! tracing, a tFAW-window signature mismatch) must fall back to full
//! issuance, not replay a wrong tape.

use pluto_repro::core::lut::{slots_per_row, width_mask, Lut};
use pluto_repro::core::partition::PartitionedLut;
use pluto_repro::core::plan;
use pluto_repro::core::query::{QueryExecutor, QueryPlacement};
use pluto_repro::core::store::LutStore;
use pluto_repro::core::DesignKind;
use pluto_repro::dram::{
    BankId, DramConfig, EnergyModel, Engine, MemoryKind, Picos, RowId, RowLoc, SubarrayId,
    SweepStepKind, TimingParams,
};
use sim_support::prop::{self, Gen};
use sim_support::prop_assert_eq;

/// A small-geometry engine with an explicit tFAW scale (0.0 disables the
/// window entirely; >1.0 makes the four-activate throttle bite harder).
fn engine(kind: MemoryKind, t_faw_scale: f64) -> Engine {
    let (base, timing, energy) = match kind {
        MemoryKind::Ddr4 => (
            DramConfig::ddr4_2400(),
            TimingParams::ddr4_2400(),
            EnergyModel::ddr4(),
        ),
        MemoryKind::Stacked3d => (
            DramConfig::hmc_3ds(),
            TimingParams::hmc_3ds(),
            EnergyModel::hmc_3ds(),
        ),
    };
    Engine::with_models(
        DramConfig {
            row_bytes: 32,
            burst_bytes: 8,
            banks: 2,
            subarrays_per_bank: 8,
            rows_per_subarray: 64,
            ..base
        },
        timing.with_t_faw_scale(t_faw_scale),
        energy,
    )
}

fn setup(e: &mut Engine, lut: Lut) -> (LutStore, QueryPlacement) {
    let bank = BankId(0);
    let pluto = SubarrayId(2);
    let n = lut.len() as u16;
    let base = e.config().rows_per_subarray - n;
    let store = LutStore::load(e, lut, bank, pluto, SubarrayId(1), base).unwrap();
    (store, QueryPlacement::adjacent(bank, pluto))
}

/// A random LUT with an effectively unique name, so every sweep case
/// records its own plans (repeat queries within the case then replay
/// them).
fn random_lut(g: &mut Gen, tag: u64) -> Lut {
    let input_bits = g.range(1u32..=6);
    let output_bits = g.range(1u32..=16);
    let mask = width_mask(output_bits);
    let len = 1usize << input_bits;
    let elements: Vec<u64> = (0..len).map(|_| g.any::<u64>() & mask).collect();
    Lut::from_table(
        format!("plan-{tag}-{input_bits}x{output_bits}"),
        input_bits,
        output_bits,
        elements,
    )
    .unwrap()
}

/// The tentpole property: a fresh plans-enabled engine (whose first
/// query records a tape and whose second replays from a warm clock), a
/// second plans-enabled engine (whose first query replays the cached
/// tape cold), and a plans-disabled issuing oracle are indistinguishable
/// query by query.
#[test]
fn warm_plan_replay_is_bit_identical_to_the_issuing_oracle() {
    let before = plan::plan_stats();
    prop::check("plan_replay_vs_issuing", 24, |g| {
        let tag: u64 = g.any();
        let scale = [0.0, 0.5, 1.0, 4.0][g.range(0usize..4)];
        for kind in [MemoryKind::Ddr4, MemoryKind::Stacked3d] {
            for design in DesignKind::ALL {
                let lut = random_lut(g, tag);
                let capacity = slots_per_row(32, lut.slot_bits());
                let inputs: Vec<u64> = g.vec(1, capacity, |g| g.range(0..lut.len() as u64));
                let dst_row = RowId(g.range(0u16..8));
                let label = format!("{design}/{kind}/x{scale}/{}", lut.name());

                let mut e_rec = engine(kind, scale);
                let (mut store_r, placement) = setup(&mut e_rec, lut.clone());
                let mut e_warm = engine(kind, scale);
                let (mut store_w, _) = setup(&mut e_warm, lut.clone());
                let mut e_oracle = engine(kind, scale);
                let (mut store_o, _) = setup(&mut e_oracle, lut.clone());

                // Two back-to-back queries: the first records (recorder) /
                // replays cold (warm engine); the second replays from a
                // warm clock — or legally falls back when the live tFAW
                // window diverges from the recorded signature.
                for step in 0..2 {
                    let (out_r, cost_r) = {
                        let mut ex = QueryExecutor::new(&mut e_rec, design);
                        ex.execute(&mut store_r, placement, &inputs, RowId(0), dst_row)
                            .unwrap()
                    };
                    let (out_w, cost_w) = {
                        let mut ex = QueryExecutor::new(&mut e_warm, design);
                        ex.execute(&mut store_w, placement, &inputs, RowId(0), dst_row)
                            .unwrap()
                    };
                    let (out_o, cost_o) = {
                        let mut ex = QueryExecutor::new(&mut e_oracle, design);
                        ex.set_use_plans(false);
                        ex.execute(&mut store_o, placement, &inputs, RowId(0), dst_row)
                            .unwrap()
                    };
                    prop_assert_eq!(
                        &out_o,
                        &lut.apply_all(&inputs).unwrap(),
                        "semantics {label}"
                    );
                    for (who, out, cost, e) in [
                        ("recorder", &out_r, cost_r, &mut e_rec),
                        ("warm", &out_w, cost_w, &mut e_warm),
                    ] {
                        prop_assert_eq!(out, &out_o, "outputs {who}#{step} {label}");
                        prop_assert_eq!(cost, cost_o, "cost {who}#{step} {label}");
                        prop_assert_eq!(
                            e.elapsed(),
                            e_oracle.elapsed(),
                            "clock {who}#{step} {label}"
                        );
                        prop_assert_eq!(
                            e.command_energy().as_pj().to_bits(),
                            e_oracle.command_energy().as_pj().to_bits(),
                            "energy {who}#{step} {label}"
                        );
                        prop_assert_eq!(e.stats(), e_oracle.stats(), "stats {who}#{step} {label}");
                        let dst = RowLoc {
                            bank: placement.bank,
                            subarray: placement.dest,
                            row: dst_row,
                        };
                        prop_assert_eq!(
                            e.peek_row(dst).unwrap(),
                            e_oracle.peek_row(dst).unwrap(),
                            "destination row {who}#{step} {label}"
                        );
                    }
                }
            }
        }
        Ok(())
    });
    let after = plan::plan_stats();
    // The cache is process-wide, so only monotone deltas are meaningful:
    // the sweep must have both recorded tapes and replayed them.
    assert!(after.misses > before.misses, "sweep never recorded a plan");
    assert!(after.hits > before.hits, "sweep never replayed a plan");
}

/// Interleaving two LUTs (alternating stores, shared engine) never lets
/// one plan's tape leak into the other's queries, cold or warm.
#[test]
fn interleaved_luts_replay_their_own_plans() {
    prop::check("plan_interleaved_luts", 12, |g| {
        let tag: u64 = g.any();
        for design in DesignKind::ALL {
            let lut_a = random_lut(g, tag);
            let lut_b = random_lut(g, tag.wrapping_add(1));
            let mut e_plan = engine(MemoryKind::Ddr4, 1.0);
            let mut e_oracle = engine(MemoryKind::Ddr4, 1.0);
            // Two stores side by side: A at subarray 2, B at subarray 4.
            let (mut sa_p, pa) = setup(&mut e_plan, lut_a.clone());
            let (mut sa_o, _) = setup(&mut e_oracle, lut_a.clone());
            let base_b = e_plan.config().rows_per_subarray - lut_b.len() as u16;
            let mut sb_p = LutStore::load(
                &mut e_plan,
                lut_b.clone(),
                BankId(0),
                SubarrayId(4),
                SubarrayId(3),
                base_b,
            )
            .unwrap();
            let mut sb_o = LutStore::load(
                &mut e_oracle,
                lut_b.clone(),
                BankId(0),
                SubarrayId(4),
                SubarrayId(3),
                base_b,
            )
            .unwrap();
            let pb = QueryPlacement::adjacent(BankId(0), SubarrayId(4));
            let ins_a: Vec<u64> = g.vec(1, 4, |g| g.range(0..lut_a.len() as u64));
            let ins_b: Vec<u64> = g.vec(1, 4, |g| g.range(0..lut_b.len() as u64));

            for round in 0..3 {
                for (which, store_p, store_o, placement, inputs) in [
                    ("A", &mut sa_p, &mut sa_o, pa, &ins_a),
                    ("B", &mut sb_p, &mut sb_o, pb, &ins_b),
                ] {
                    let (out_p, cost_p) = {
                        let mut ex = QueryExecutor::new(&mut e_plan, design);
                        ex.execute(store_p, placement, inputs, RowId(0), RowId(1))
                            .unwrap()
                    };
                    let (out_o, cost_o) = {
                        let mut ex = QueryExecutor::new(&mut e_oracle, design);
                        ex.set_use_plans(false);
                        ex.execute(store_o, placement, inputs, RowId(0), RowId(1))
                            .unwrap()
                    };
                    let label = format!("{design}/{which}#{round}");
                    prop_assert_eq!(&out_p, &out_o, "outputs {label}");
                    prop_assert_eq!(cost_p, cost_o, "cost {label}");
                    prop_assert_eq!(e_plan.elapsed(), e_oracle.elapsed(), "clock {label}");
                    prop_assert_eq!(
                        e_plan.command_energy().as_pj().to_bits(),
                        e_oracle.command_energy().as_pj().to_bits(),
                        "energy {label}"
                    );
                    prop_assert_eq!(e_plan.stats(), e_oracle.stats(), "stats {label}");
                }
            }
        }
        Ok(())
    });
}

/// Partitioned queries replay per-lane plans — including a full
/// 128-segment partition — with outputs, the §5.6 merged cost, and the
/// engine's end state bit-identical to the plans-disabled serial lanes,
/// for every design (GSA re-records once per residency state, then
/// replays warm).
#[test]
fn partitioned_lanes_replay_warm_including_128_segments() {
    let before = plan::plan_stats();
    // 1024-entry LUT over 8-row subarrays => 128 segment lanes.
    let cfg = DramConfig {
        row_bytes: 32,
        burst_bytes: 8,
        banks: 1,
        subarrays_per_bank: 260,
        rows_per_subarray: 8,
        ..DramConfig::ddr4_2400()
    };
    let src = SubarrayId(0);
    let dst = SubarrayId(1);
    for design in DesignKind::ALL {
        let lut = Lut::from_fn(format!("plan-128seg-{design}"), 10, 12, |x| {
            x.wrapping_mul(31) & 0xfff
        })
        .unwrap();
        let mut e_plan = Engine::new(cfg.clone());
        let mut p_plan =
            PartitionedLut::load(&mut e_plan, lut.clone(), BankId(0), SubarrayId(2)).unwrap();
        let mut e_oracle = Engine::new(cfg.clone());
        let mut p_oracle =
            PartitionedLut::load(&mut e_oracle, lut.clone(), BankId(0), SubarrayId(2)).unwrap();
        p_oracle.set_use_plans(false);
        assert_eq!(p_plan.segment_count(), 128);

        let inputs: Vec<u64> = (0..6).map(|i| i * 171).collect();
        for round in 0..3 {
            let (out_p, cost_p) = p_plan
                .query(&mut e_plan, design, src, dst, &inputs, RowId(0), RowId(1))
                .unwrap();
            let (out_o, cost_o) = p_oracle
                .query(&mut e_oracle, design, src, dst, &inputs, RowId(0), RowId(1))
                .unwrap();
            let label = format!("{design}#{round}");
            assert_eq!(out_p, out_o, "outputs {label}");
            assert_eq!(out_p, lut.apply_all(&inputs).unwrap(), "semantics {label}");
            assert_eq!(cost_p, cost_o, "cost {label}");
            assert_eq!(e_plan.elapsed(), e_oracle.elapsed(), "clock {label}");
            assert_eq!(
                e_plan.command_energy().as_pj().to_bits(),
                e_oracle.command_energy().as_pj().to_bits(),
                "energy {label}"
            );
            assert_eq!(e_plan.stats(), e_oracle.stats(), "stats {label}");
        }
    }
    let after = plan::plan_stats();
    // Three designs × three rounds × 128 lanes; at least the final warm
    // round of each design replays every lane.
    assert!(
        after.hits - before.hits >= 128,
        "partitioned lanes never replayed: {before:?} -> {after:?}"
    );
}

/// Seam regression for `Engine::rewind_clock`'s boundary rule: an ACT
/// issued at *exactly* the rewind timestamp belongs to the region being
/// rewound and must be dropped (strict `t < to`). The §5.6 partitioned
/// max-lane pattern rewinds to the region start before replaying each
/// lane, and a lane's first ACT issues at exactly that mark on a fresh
/// engine — under the old `t <= to` retention, that boundary ACT (and
/// the subarray it left open) survived into the next lane, which then
/// saw a fake warm tFAW window and a fake row-buffer hit.
#[test]
fn rewind_drops_the_act_issued_exactly_at_the_mark() {
    // Binding timing: 1 ns ACT spacing against a ~27 ns four-activate
    // window, so a single stale window entry re-gates the 4th ACT.
    let timing = TimingParams {
        t_rcd: Picos::from_ns(1.0),
        ..TimingParams::ddr4_2400().with_t_faw_scale(2.0)
    };
    let fresh =
        || Engine::with_models(DramConfig::ddr4_2400(), timing.clone(), EnergyModel::ddr4());
    // Exactly four ACTs: the window holds four entries, so the boundary
    // ACT at t0 is still *in* the window when the rewind runs (a fifth
    // ACT would evict it and mask the boundary rule).
    let lane = |e: &mut Engine| {
        e.sweep_rows(
            BankId(1),
            SubarrayId(0),
            RowId(0),
            4,
            SweepStepKind::ChargeShare,
        )
        .unwrap();
    };

    let mut oracle = fresh();
    lane(&mut oracle);
    let expect_elapsed = oracle.elapsed();
    let expect_stats = oracle.stats();

    let mut e = fresh();
    let t0 = e.elapsed();
    assert_eq!(t0, Picos::ZERO);
    lane(&mut e); // lane A: first ACT issues at exactly t0
    let stats_a = e.stats();
    e.rewind_clock(t0);
    assert_eq!(e.elapsed(), t0);
    assert!(
        e.tfaw_window_inert(),
        "the boundary ACT at t0 must not survive the rewind"
    );
    lane(&mut e); // lane B: identical stream from the same mark
    assert_eq!(
        e.elapsed(),
        expect_elapsed,
        "lane B must replay at lane A's exact cost"
    );
    // Classification must also restart: lane B re-opens the subarray
    // (one miss, then charge-share hits), exactly like lane A did.
    assert_eq!(e.stats().since(&stats_a), expect_stats);
}

/// Explicit non-replayable-context tests: a legality gate failure must
/// run the full issuing path (bit-identical to a plans-disabled twin)
/// and count a fallback — never replay a wrong tape.
#[test]
fn non_replayable_contexts_fall_back_to_full_issuance() {
    let lut = Lut::from_fn("plan-fallback-probe", 5, 9, |x| (x * 7) & 0x1ff).unwrap();
    let inputs: Vec<u64> = vec![3, 17, 30, 8];

    // Gate 1: command tracing. A traced engine must issue (the replayed
    // delta has no command stream to append), and its trace must match
    // the plans-disabled twin's exactly.
    let before = plan::plan_stats();
    let mut e_traced = engine(MemoryKind::Ddr4, 1.0);
    e_traced.enable_trace();
    let (mut store_t, placement) = setup(&mut e_traced, lut.clone());
    let (out_t, cost_t) = {
        let mut ex = QueryExecutor::new(&mut e_traced, DesignKind::Gmc);
        ex.execute(&mut store_t, placement, &inputs, RowId(0), RowId(1))
            .unwrap()
    };
    let mut e_oracle = engine(MemoryKind::Ddr4, 1.0);
    e_oracle.enable_trace();
    let (mut store_o, _) = setup(&mut e_oracle, lut.clone());
    let (out_o, cost_o) = {
        let mut ex = QueryExecutor::new(&mut e_oracle, DesignKind::Gmc);
        ex.set_use_plans(false);
        ex.execute(&mut store_o, placement, &inputs, RowId(0), RowId(1))
            .unwrap()
    };
    assert_eq!(out_t, out_o, "traced outputs");
    assert_eq!(cost_t, cost_o, "traced cost");
    assert_eq!(e_traced.take_trace(), e_oracle.take_trace(), "traces");
    let after = plan::plan_stats();
    assert!(
        after.fallbacks > before.fallbacks,
        "tracing did not fall back: {before:?} -> {after:?}"
    );

    // Gate 2: tFAW-window signature mismatch. Record a tape on an engine
    // whose window is warm (a just-issued ACT ages into the query), then
    // query the same key from a fresh engine: the live signature differs,
    // so the hit must be refused and the query issued in full.
    let lut = Lut::from_fn("plan-sig-mismatch-probe", 5, 9, |x| (x * 11) & 0x1ff).unwrap();
    let warm_clock = |e: &mut Engine| {
        // One ACT immediately before the query, with tFAW stretched so
        // the entry is still live when the query begins.
        let probe = RowLoc {
            bank: BankId(1),
            subarray: SubarrayId(0),
            row: RowId(0),
        };
        e.activate(probe).unwrap();
        e.precharge(probe.bank, probe.subarray).unwrap();
    };
    let mut e_rec = engine(MemoryKind::Ddr4, 40.0);
    let (mut store_r, placement) = setup(&mut e_rec, lut.clone());
    warm_clock(&mut e_rec);
    let (out_r, _) = {
        let mut ex = QueryExecutor::new(&mut e_rec, DesignKind::Gmc);
        ex.execute(&mut store_r, placement, &inputs, RowId(0), RowId(1))
            .unwrap()
    };
    assert_eq!(out_r, lut.apply_all(&inputs).unwrap());

    let before = plan::plan_stats();
    let mut e_cold = engine(MemoryKind::Ddr4, 40.0);
    let (mut store_c, _) = setup(&mut e_cold, lut.clone());
    let (out_c, cost_c) = {
        let mut ex = QueryExecutor::new(&mut e_cold, DesignKind::Gmc);
        ex.execute(&mut store_c, placement, &inputs, RowId(0), RowId(1))
            .unwrap()
    };
    let mut e_oracle = engine(MemoryKind::Ddr4, 40.0);
    let (mut store_o, _) = setup(&mut e_oracle, lut.clone());
    let (out_o, cost_o) = {
        let mut ex = QueryExecutor::new(&mut e_oracle, DesignKind::Gmc);
        ex.set_use_plans(false);
        ex.execute(&mut store_o, placement, &inputs, RowId(0), RowId(1))
            .unwrap()
    };
    assert_eq!(out_c, out_o, "mismatch outputs");
    assert_eq!(cost_c, cost_o, "mismatch cost");
    assert_eq!(e_cold.elapsed(), e_oracle.elapsed(), "mismatch clock");
    assert_eq!(
        e_cold.command_energy().as_pj().to_bits(),
        e_oracle.command_energy().as_pj().to_bits(),
        "mismatch energy"
    );
    let after = plan::plan_stats();
    assert!(
        after.fallbacks > before.fallbacks,
        "signature mismatch did not fall back: {before:?} -> {after:?}"
    );
}
