//! Differential coverage of the layered quantized-inference pipeline
//! (`DESIGN.md` §12): every lowering of the GEMV-by-LUT kernel, the
//! requantization stage's clamp seams, the 128-segment partitioned
//! direct-product store, and the end-to-end MLP forward pass must be
//! **bit-identical** to the host `i32` oracle — serially on a
//! [`Session`] machine and through the [`Cluster`] for every design ×
//! memory kind × worker count.

use pluto_repro::core::cluster::Cluster;
use pluto_repro::core::session::{ExecConfig, Session};
use pluto_repro::core::DesignKind;
use pluto_repro::dram::MemoryKind;
use pluto_repro::qnn::gemv::{smul_lut, to_field, to_signed, GemvPath, QuantLinear};
use pluto_repro::qnn::model::{lenet_layer_shapes, sample_batch, QuantModel};
use pluto_repro::qnn::pluto_exec::{
    gemv_cluster, mlp_cluster, mlp_exec_config, qnn_layer_query_counts, qnn_query_count,
};
use pluto_repro::qnn::requant::Requant;
use pluto_repro::qnn::{LeNet5, Precision};
use sim_support::prop::{self, Gen};
use sim_support::prop_assert_eq;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// A session whose subarray pool holds the widest direct store the
/// sweep queries (128 product segments + requantization + data).
fn wide_session(design: DesignKind) -> Session {
    let mut cfg = ExecConfig::measurement(design);
    cfg.subarrays_per_bank = 300;
    Session::with_config(cfg).expect("measurement session")
}

fn seeded_case(g: &mut Gen, width: u32) -> (QuantLinear, Vec<i32>) {
    let lo = -(1i32 << (width - 1));
    let hi = (1i32 << (width - 1)) - 1;
    let out = g.range(1usize..=4);
    let inp = g.range(1usize..=6);
    let weights = g.vec(out * inp, out * inp, |g| g.range(lo..=hi));
    let x = g.vec(inp, inp, |g| g.range(lo..=hi));
    (QuantLinear::new("prop-gemv", out, inp, width, weights), x)
}

/// The property sweep of the satellite: seeded weights/activations at
/// every operand width 1..=8, both lowerings, against the host `i32`
/// oracle. One persistent machine per width — stores stay resident
/// across cases, exactly how a model reuses them across layers.
#[test]
fn gemv_matches_host_oracle_for_every_width_and_path() {
    let sessions: RefCell<HashMap<u32, Session>> = RefCell::new(HashMap::new());
    prop::check("qnn_gemv_differential", 40, |g| {
        let width = g.range(1u32..=8);
        let (linear, x) = seeded_case(g, width);
        let expect = linear.forward_reference(&x);
        let mut sessions = sessions.borrow_mut();
        let session = sessions
            .entry(width)
            .or_insert_with(|| wide_session(DesignKind::Gmc));
        for path in GemvPath::ALL {
            let got = linear.forward_on(session.machine_mut(), &x, path).unwrap();
            prop_assert_eq!(
                &got,
                &expect,
                "w{width} {path} {}x{}",
                linear.out_features(),
                linear.in_features()
            );
        }
        Ok(())
    });
}

/// Negative-value requantization clamp seams: every boundary of the
/// `saturate → arithmetic shift → clamp` transfer, host oracle vs the
/// LUT stage on a machine.
#[test]
fn requant_clamp_seams_match_the_lut() {
    let mut session = wide_session(DesignKind::Bsa);
    for stage in [Requant::new(12, 2, 8), Requant::new(10, 3, 6)] {
        let in_min = -(1i32 << (stage.in_width - 1));
        let in_max = (1i32 << (stage.in_width - 1)) - 1;
        let step = 1i32 << stage.shift;
        let seams = vec![
            i32::MIN / 2, // deep saturation from a wide accumulator
            in_min - 1,
            in_min,
            in_min + 1,
            -step - 1,
            -step, // exactly one negative output step
            -step + 1,
            -1, // arithmetic shift must round toward -inf, not zero
            0,
            1,
            step - 1,
            step,
            in_max - 1,
            in_max,
            in_max + 1,
            i32::MAX / 2,
        ];
        let expect: Vec<i32> = seams.iter().map(|&a| stage.apply_host(a)).collect();
        let got = stage.apply_on(session.machine_mut(), &seams).unwrap();
        assert_eq!(got, expect, "{stage} seams");
        // The defining negative seam: -1 >> shift stays -1 (arithmetic),
        // and the output clamp engages on both ends of the window.
        assert_eq!(stage.apply_host(-1), -1, "{stage}");
        let out_min = -(1i32 << (stage.out_width - 1));
        let out_max = (1i32 << (stage.out_width - 1)) - 1;
        assert_eq!(stage.apply_host(in_min), out_min, "{stage}");
        assert_eq!(stage.apply_host(in_max), out_max, "{stage}");
    }
}

/// The 128-segment partitioned-multiply case: the 8-bit signed product
/// table spans 65 536 rows ⇒ 128 §5.6 segments ⇒ 256 claimed
/// subarrays, preloading is idempotent, and a GEMV through the
/// partitioned store stays exact.
#[test]
fn direct_smul8_partitions_across_128_segments() {
    let mut session = wide_session(DesignKind::Gmc);
    let m = session.machine_mut();
    let lut = smul_lut(8).unwrap();
    assert_eq!(lut.len(), 65_536);
    let claimed = m.preload(&lut).unwrap();
    assert_eq!(claimed, 256, "128 segments x (pLUTo + master)");
    assert_eq!(m.resident_luts(), 1);
    // Idempotent: preloading again reports the same claim, no new store.
    assert_eq!(m.preload(&lut).unwrap(), 256);
    assert_eq!(m.resident_luts(), 1);

    let linear = QuantLinear::new("seg128", 2, 4, 8, vec![-128, 127, -1, 64, 3, -77, 90, -128]);
    let x = vec![-128, -1, 127, 5];
    let got = linear.forward_on(m, &x, GemvPath::Direct).unwrap();
    assert_eq!(got, linear.forward_reference(&x));
}

/// Field encode/decode round-trips across every width (the seam the
/// whole pipeline's signedness rests on).
#[test]
fn two_s_complement_fields_round_trip() {
    for width in 1..=16u32 {
        let lo = -(1i64 << (width - 1)) as i32;
        let hi = ((1i64 << (width - 1)) - 1) as i32;
        for v in [lo, lo + 1, -1, 0, 1, hi - 1, hi] {
            if v < lo || v > hi {
                continue;
            }
            assert_eq!(to_signed(to_field(v, width), width), v, "w{width} {v}");
        }
    }
}

/// The acceptance criterion: the end-to-end quantized MLP forward pass
/// on the cluster is bit-identical to the host `i32` oracle for every
/// design × memory kind × {1, 2, 4} workers (direct path — the serving
/// lowering), and the serial machine agrees on both lowerings.
#[test]
fn mlp_forward_is_bit_identical_across_designs_kinds_and_workers() {
    let model = QuantModel::mnist_mlp(7);
    let samples = sample_batch(21, 2);
    for (digit, x) in &samples {
        let oracle = model.forward_reference(x);
        assert_eq!(oracle.len(), 10, "digit {digit} logits");
        for design in DesignKind::ALL {
            for kind in [MemoryKind::Ddr4, MemoryKind::Stacked3d] {
                let mut config = mlp_exec_config(design);
                config.kind = kind;
                for workers in [1usize, 2, 4] {
                    let mut cluster = Cluster::new(workers);
                    let (logits, report) =
                        mlp_cluster(&mut cluster, config.clone(), &model, x, GemvPath::Direct)
                            .unwrap();
                    assert_eq!(
                        logits, oracle,
                        "digit {digit} on {design}/{kind} x{workers} workers"
                    );
                    assert!(report.validated, "{design}/{kind} x{workers}");
                }
            }
        }
    }
    // Serial machine, both lowerings, one design per path (the width
    // sweep above covers the per-width differentials).
    let (_, x) = &samples[0];
    let oracle = model.forward_reference(x);
    for path in GemvPath::ALL {
        let mut session = wide_session(DesignKind::Bsa);
        let got = model.forward_on(session.machine_mut(), x, path).unwrap();
        assert_eq!(got, oracle, "serial {path}");
    }
}

/// Worker count must not perturb the *report* either: the shard
/// reduction is deterministic in shard order.
#[test]
fn gemv_cluster_reports_are_worker_count_invariant() {
    let mut rng = <sim_support::StdRng as sim_support::SeedableRng>::seed_from_u64(9);
    let linear = Arc::new(QuantLinear::seeded("inv", 24, 16, 8, -8..=7, &mut rng));
    let x: Vec<i32> = (0..16).map(|i| (i % 13) - 6).collect();
    let requant = Some(Requant::new(12, 2, 8));
    let run = |workers| {
        let mut cluster = Cluster::new(workers);
        gemv_cluster(
            &mut cluster,
            mlp_exec_config(DesignKind::Gmc),
            &linear,
            requant,
            &x,
            GemvPath::Direct,
        )
        .unwrap()
    };
    let (out1, rep1) = run(1);
    let (out4, rep4) = run(4);
    assert_eq!(out1, out4);
    assert_eq!(rep1, rep4, "shard reduction must be bit-stable");
}

/// Satellite pin: the Table 7 query counts, now derived from the layer
/// graph, must reproduce the original hand-maintained numbers.
#[test]
fn table7_query_counts_are_pinned() {
    let net1 = LeNet5::new(Precision::Bit1, 0);
    let net4 = LeNet5::new(Precision::Bit4, 0);
    assert_eq!(qnn_query_count(&net1), 80, "1-bit Table 7 count");
    assert_eq!(qnn_query_count(&net4), 105, "4-bit Table 7 count");
    // The graph view agrees with the network's own MAC bookkeeping.
    for net in [&net1, &net4] {
        let (conv, fc) = net.mac_counts();
        let graph: u64 = lenet_layer_shapes(net).iter().map(|s| s.mac_count()).sum();
        assert_eq!(graph, conv + fc, "layer graph covers every MAC");
        let layers = qnn_layer_query_counts(net);
        assert_eq!(layers.len(), 5);
        assert!(layers.iter().all(|(_, q)| *q > 0));
    }
}

/// The model's own lookup accounting matches the shapes it reports.
#[test]
fn model_lookup_accounting_is_consistent() {
    let model = QuantModel::mnist_mlp(7);
    let shapes = model.layer_shapes();
    assert_eq!(shapes.len(), 3);
    let macs: u64 = shapes.iter().map(|s| s.mac_count()).sum();
    assert_eq!(macs, 196 * 32 + 32 * 16 + 16 * 10);
    // Direct: one lookup per MAC + one per requantized activation.
    assert_eq!(model.lut_lookups(GemvPath::Direct), macs + 32 + 16);
    // Nibble-plane at 8 bits: four limb queries per MAC.
    assert_eq!(model.lut_lookups(GemvPath::NibblePlane), 4 * macs + 32 + 16);
}
