//! Differential suite for §5.6 partitioned LUT queries (`DESIGN.md` §8).
//!
//! Partitioned queries must be *bit-identical* to two independent
//! oracles — the host-side software LUT and an unpartitioned
//! single-subarray run of the same table on a geometry where it fits —
//! across all 3 designs × 2 memory kinds × segment counts {2, 3, 4},
//! including boundary inputs on segment seams. On top, the suite locks
//! the §5.6 engine-reconciliation invariant (the engine's own clock and
//! energy deltas equal the merged cost) and the end-to-end
//! `Session`/`Cluster` routing of large (including non-power-of-two)
//! LUTs.

use pluto_repro::core::cluster::Cluster;
use pluto_repro::core::lut::unpack_slots;
use pluto_repro::core::partition::PartitionedLut;
use pluto_repro::core::session::{self, ExecConfig, Session, Workload};
use pluto_repro::core::{DesignKind, Lut, LutStore, PlutoError, QueryExecutor, QueryPlacement};
use pluto_repro::dram::{BankId, DramConfig, Engine, MemoryKind, RowId, RowLoc, SubarrayId};
use sim_support::StdRng;

/// Rows per subarray of the partitioned geometry: small enough that a
/// 2-segment LUT is only 128 entries, keeping the full design × kind ×
/// segment sweep fast.
const SEG_ROWS: usize = 64;

fn partitioned_engine(kind: MemoryKind) -> Engine {
    Engine::new(DramConfig {
        kind,
        row_bytes: 32,
        burst_bytes: 8,
        banks: 1,
        subarrays_per_bank: 48,
        rows_per_subarray: SEG_ROWS as u16,
    })
}

/// The oracle geometry: identical rows/bytes but subarrays deep enough
/// to hold every swept LUT unpartitioned.
fn unpartitioned_engine(kind: MemoryKind) -> Engine {
    Engine::new(DramConfig {
        kind,
        row_bytes: 32,
        burst_bytes: 8,
        banks: 1,
        subarrays_per_bank: 8,
        rows_per_subarray: 1024,
    })
}

/// Boundary inputs hugging every segment seam (`k·R ± 1`), the table
/// ends, plus interior points and duplicates — capped at the 16-slot row
/// capacity of the 32 B / 16-bit-slot layout.
fn seam_inputs(len: usize) -> Vec<u64> {
    let mut inputs = vec![0u64, 1, (len - 1) as u64];
    for k in 1..len.div_ceil(SEG_ROWS) {
        let seam = (k * SEG_ROWS) as u64;
        inputs.extend([seam - 1, seam, seam + 1]);
    }
    inputs.push((len / 2) as u64);
    inputs.push(0); // duplicate input: every copy must capture
    inputs.retain(|&x| (x as usize) < len);
    inputs.truncate(16);
    inputs
}

#[test]
fn partitioned_matches_host_oracle_and_unpartitioned_run() {
    for kind in [MemoryKind::Ddr4, MemoryKind::Stacked3d] {
        for design in DesignKind::ALL {
            for segs in [2usize, 3, 4] {
                let label = format!("{design}/{kind}/{segs}seg");
                let len = segs * SEG_ROWS;
                let lut =
                    Lut::from_fn_len(format!("diff{segs}"), len, 16, |x| (x * 37 + 11) & 0xFFFF)
                        .unwrap();
                let inputs = seam_inputs(len);
                let host = lut.apply_all(&inputs).unwrap();

                // Partitioned run.
                let mut e = partitioned_engine(kind);
                let mut part =
                    PartitionedLut::load(&mut e, lut.clone(), BankId(0), SubarrayId(2)).unwrap();
                assert_eq!(part.segment_count(), segs, "{label}");
                let (out, cost) = part
                    .query(
                        &mut e,
                        design,
                        SubarrayId(0),
                        SubarrayId(1),
                        &inputs,
                        RowId(0),
                        RowId(3),
                    )
                    .unwrap();
                assert_eq!(out, host, "{label}: partitioned vs host oracle");
                assert_eq!(cost.segments, segs, "{label}");

                // Unpartitioned run of the *same* table where it fits.
                let mut eu = unpartitioned_engine(kind);
                let mut store = LutStore::load(
                    &mut eu,
                    lut.clone(),
                    BankId(0),
                    SubarrayId(2),
                    SubarrayId(3),
                    0,
                )
                .unwrap();
                let placement = QueryPlacement {
                    bank: BankId(0),
                    source: SubarrayId(0),
                    pluto: SubarrayId(2),
                    dest: SubarrayId(1),
                };
                let mut ex = QueryExecutor::new(&mut eu, design);
                let (flat, _) = ex
                    .execute(&mut store, placement, &inputs, RowId(0), RowId(3))
                    .unwrap();
                assert_eq!(out, flat, "{label}: partitioned vs unpartitioned");

                // The committed destination row is byte-identical too: the
                // §5.6 merge leaves the same packed output vector a flat
                // sweep would.
                let dst = |e: &Engine| {
                    e.peek_row(RowLoc {
                        bank: BankId(0),
                        subarray: SubarrayId(1),
                        row: RowId(3),
                    })
                    .unwrap()
                };
                assert_eq!(dst(&e), dst(&eu), "{label}: destination row bytes");
                assert_eq!(
                    unpack_slots(&dst(&e), lut.slot_bits(), inputs.len()),
                    host,
                    "{label}: destination row decodes to the oracle"
                );
            }
        }
    }
}

#[test]
fn engine_deltas_equal_the_merged_cost_for_every_design_and_kind() {
    // Satellite: the §5.6 merge runs *on* the engine (parallel lanes), so
    // engine-side totals can no longer disagree with the returned cost.
    for kind in [MemoryKind::Ddr4, MemoryKind::Stacked3d] {
        for design in DesignKind::ALL {
            let mut e = partitioned_engine(kind);
            let lut = Lut::from_fn("acct", 8, 16, |x| x ^ 0xA5).unwrap();
            let mut part = PartitionedLut::load(&mut e, lut, BankId(0), SubarrayId(2)).unwrap();
            let inputs: Vec<u64> = (0..16u64).map(|i| i * 16 + 7).collect();
            for round in 0..2 {
                let t0 = e.elapsed();
                let e0 = e.command_energy();
                let (_, cost) = part
                    .query(
                        &mut e,
                        design,
                        SubarrayId(0),
                        SubarrayId(1),
                        &inputs,
                        RowId(0),
                        RowId(1),
                    )
                    .unwrap();
                assert_eq!(
                    e.elapsed() - t0,
                    cost.latency,
                    "{design}/{kind} round {round}: clock drift"
                );
                assert!(
                    ((e.command_energy() - e0).as_pj() - cost.energy.as_pj()).abs() < 1e-9,
                    "{design}/{kind} round {round}: energy drift"
                );
            }
        }
    }
}

#[test]
fn gsa_partitioned_queries_reload_every_segment_every_query() {
    // GSA destroys each segment per sweep; repeated partitioned queries
    // must keep answering correctly and cost identically (the reload is
    // charged inside every query, §5.2.1).
    let mut e = partitioned_engine(MemoryKind::Ddr4);
    let lut = Lut::from_fn("gsa8", 8, 16, |x| (x * 3) & 0xFFFF).unwrap();
    let mut part = PartitionedLut::load(&mut e, lut.clone(), BankId(0), SubarrayId(2)).unwrap();
    let inputs: Vec<u64> = vec![0, 64, 128, 192, 255];
    let host = lut.apply_all(&inputs).unwrap();
    let mut costs = Vec::new();
    for round in 0..3 {
        let (out, cost) = part
            .query(
                &mut e,
                DesignKind::Gsa,
                SubarrayId(0),
                SubarrayId(1),
                &inputs,
                RowId(0),
                RowId(1),
            )
            .unwrap();
        assert_eq!(out, host, "round {round}");
        costs.push(cost);
    }
    assert_eq!(costs[0], costs[1]);
    assert_eq!(costs[1], costs[2], "every GSA query pays the same reload");
}

/// A pluggable scenario over a non-power-of-two 650-entry LUT — the shape
/// `Lut::from_table` cannot even express — running through the standard
/// `Session`/`Cluster` `query()` path.
#[derive(Debug)]
struct OddGamma {
    inputs: Vec<u64>,
}

impl OddGamma {
    const LEN: usize = 650;

    fn new() -> Self {
        OddGamma {
            inputs: (0..120u64).map(|i| (i * 131) % Self::LEN as u64).collect(),
        }
    }

    fn lut() -> Lut {
        Lut::from_fn_len("odd650", Self::LEN, 16, |x| (x * x) & 0xFFFF).unwrap()
    }
}

impl Workload for OddGamma {
    fn id(&self) -> &'static str {
        "OddGamma650"
    }
    fn prepare(&mut self, _rng: &mut StdRng) {
        self.inputs = (0..120u64).map(|i| (i * 131) % Self::LEN as u64).collect();
    }
    fn run_pluto(&mut self, sess: &mut Session) -> Result<Vec<u8>, PlutoError> {
        let out = sess.machine_mut().apply(&Self::lut(), &self.inputs)?.values;
        Ok(session::encode_words(&out))
    }
    fn run_reference(&self) -> Vec<u8> {
        let expect: Vec<u64> = self.inputs.iter().map(|&x| (x * x) & 0xFFFF).collect();
        session::encode_words(&expect)
    }
    fn input_bytes(&self) -> f64 {
        self.inputs.len() as f64 * 10.0 / 8.0
    }
}

#[test]
fn session_and_cluster_route_non_power_of_two_large_luts() {
    // Acceptance: a LUT larger than `rows_per_subarray` with a
    // non-power-of-two length executes through the standard `Session` /
    // `Cluster` path — one validated report, bit-identical across the
    // serial and pooled-parallel executors.
    let config = ExecConfig::measurement_on(DesignKind::Gmc, MemoryKind::Ddr4);
    let serial = Session::with_config(config.clone())
        .unwrap()
        .run(&mut OddGamma::new())
        .unwrap();
    assert!(serial.validated, "odd-length partitioned run validates");
    assert!(serial.acts > 0);

    let mut cluster = Cluster::new(2);
    cluster.submit(config.clone(), Box::new(OddGamma::new()));
    cluster.submit(config, Box::new(OddGamma::new()));
    let reports = cluster.run().unwrap();
    for (i, r) in reports.iter().enumerate() {
        assert_eq!(*r, serial, "cluster run {i} diverged from serial");
    }
}

#[test]
fn apply_and_map_agree_on_odd_length_luts_that_fit_one_subarray() {
    // Regression: a 650-entry truncated LUT on a 1024-row geometry used
    // to run as a §6.1-forbidden 650-step single sweep on the fast path
    // while the ISA path rejected it. Both now route partitioned (one
    // padded segment) and agree.
    let mut session = Session::builder(DesignKind::Gmc)
        .rows_per_subarray(1024)
        .build()
        .unwrap();
    let m = session.machine_mut();
    let lut = Lut::from_fn_len("oddfit650", 650, 16, |x| (x * 11) & 0xFFFF).unwrap();
    let inputs: Vec<u64> = (0..100u64).map(|i| (i * 131) % 650).collect();
    let fast = m.apply(&lut, &inputs).unwrap();
    let slow = m.map(&lut, &inputs).unwrap();
    assert_eq!(fast.values, slow.values);
    let expect: Vec<u64> = inputs.iter().map(|&x| (x * 11) & 0xFFFF).collect();
    assert_eq!(fast.values, expect);
}

#[test]
fn machine_map_and_apply_agree_on_partitioned_luts() {
    // The compiled ISA path (map → Controller → pluto_op) and the fast
    // path (apply → PlutoStore) must produce identical values for a
    // partitioned LUT, exactly as they do for small LUTs.
    let mut session = Session::builder(DesignKind::Bsa)
        .subarrays(24)
        .build()
        .unwrap();
    let m = session.machine_mut();
    let lut = Lut::from_fn("agree11", 11, 16, |x| (x * 7 + 5) & 0xFFFF).unwrap();
    let inputs: Vec<u64> = (0..200u64).map(|i| (i * 19) % 2048).collect();
    let fast = m.apply(&lut, &inputs).unwrap();
    let slow = m.map(&lut, &inputs).unwrap();
    assert_eq!(fast.values, slow.values);
    let expect: Vec<u64> = inputs.iter().map(|&x| (x * 7 + 5) & 0xFFFF).collect();
    assert_eq!(fast.values, expect);
}
