//! Cross-crate integration tests: the full stack from assembly text
//! through the compiler, controller, query engine, and DRAM simulator,
//! plus workload validation on every design and figure-level shape checks.

use pluto_repro::baselines::{estimate, machine::Machine, profile, WorkloadId};
use pluto_repro::core::compiler::Graph;
use pluto_repro::core::controller::Controller;
use pluto_repro::core::isa::{parse_program, Program, RowReg};
use pluto_repro::core::lut::catalog;
use pluto_repro::core::prelude::*;
use pluto_repro::core::session::Session;
use pluto_repro::dram::MemoryKind;
use pluto_repro::workloads::runner::PlutoCost;
use pluto_repro::workloads::workload_for;

/// Measures one workload through the unified session API.
fn measure(id: WorkloadId, design: DesignKind) -> PlutoCost {
    measure_on(id, design, MemoryKind::Ddr4)
}

fn measure_on(id: WorkloadId, design: DesignKind, kind: MemoryKind) -> PlutoCost {
    let mut workload = workload_for(id);
    let mut session = Session::builder(design)
        .memory(kind)
        .build()
        .unwrap_or_else(|e| panic!("session for {id} on {design}/{kind}: {e}"));
    let report = session
        .run(workload.as_mut())
        .unwrap_or_else(|e| panic!("{id} on {design}/{kind}: {e}"));
    PlutoCost::from_report(id, report)
}

fn cfg() -> DramConfig {
    DramConfig {
        row_bytes: 64,
        burst_bytes: 8,
        banks: 2,
        subarrays_per_bank: 16,
        rows_per_subarray: 512,
        ..DramConfig::ddr4_2400()
    }
}

#[test]
fn assembly_text_to_execution() {
    // The paper's Fig. 5 flow, starting from raw assembly text.
    let lut = catalog::popcount(4).unwrap();
    let text = format!(
        "pluto_row_alloc $prg0, 32, 4\n\
         pluto_row_alloc $prg1, 32, 4\n\
         pluto_subarray_alloc $lut_rg0, 16, \"{}\"\n\
         pluto_op $prg1, $prg0, $lut_rg0, 16, 4\n",
        lut.name()
    );
    let program = Program {
        instructions: parse_program(&text).unwrap(),
        inputs: vec![(RowReg(0), 4)],
        output: Some((RowReg(1), 4)),
        slot_bits: 4,
    };
    for design in DesignKind::ALL {
        let mut c = Controller::new(cfg(), design).unwrap();
        c.register_lut(lut.clone());
        let inputs: Vec<u64> = (0..32u64).map(|i| i % 16).collect();
        let out = c.run(&program, std::slice::from_ref(&inputs)).unwrap();
        let expect: Vec<u64> = inputs.iter().map(|v| v.count_ones() as u64).collect();
        assert_eq!(out.outputs, expect, "{design}");
    }
}

#[test]
fn compiled_graph_matches_fast_path_and_reference() {
    // compiler/controller path == direct query path == host reference.
    let mut g = Graph::new();
    let a = g.input(4);
    let b = g.input(4);
    let s = g.combine(catalog::add(4).unwrap(), a, b);
    let compiled = g.compile(s, 24).unwrap();

    let av: Vec<u64> = (0..24u64).map(|i| i % 16).collect();
    let bv: Vec<u64> = (0..24u64).map(|i| 15 - i % 16).collect();
    let expect: Vec<u64> = av.iter().zip(&bv).map(|(&x, &y)| x + y).collect();

    let mut controller = Controller::new(cfg(), DesignKind::Bsa).unwrap();
    for lut in &compiled.luts {
        controller.register_lut(lut.clone());
    }
    let through_stack = controller
        .run(&compiled.program, &[av.clone(), bv.clone()])
        .unwrap();
    assert_eq!(through_stack.outputs, expect);

    let mut machine = PlutoMachine::new(cfg(), DesignKind::Bsa).unwrap();
    let fast = machine
        .apply2(&catalog::add(4).unwrap(), &av, 4, &bv, 4)
        .unwrap();
    assert_eq!(fast.values, expect);
}

#[test]
fn every_fig7_workload_validates_on_every_design() {
    // Functional bit-exactness of the pLUTo mappings across designs
    // (Salsa20 is covered separately — it is the long-running one).
    for id in [
        WorkloadId::Crc8,
        WorkloadId::Vmpc,
        WorkloadId::ImgBin,
        WorkloadId::ColorGrade,
    ] {
        for design in DesignKind::ALL {
            let cost = measure(id, design);
            assert!(
                cost.report.validated,
                "{id} on {design} mismatched the reference"
            );
        }
    }
}

#[test]
fn fig9_micro_workloads_validate() {
    for id in [
        WorkloadId::Add4,
        WorkloadId::Bc4,
        WorkloadId::Bc8,
        WorkloadId::BitwiseRow,
    ] {
        let cost = measure(id, DesignKind::Gmc);
        assert!(cost.report.validated, "{id}");
    }
}

#[test]
fn design_orderings_hold_end_to_end() {
    // Table 1's throughput/energy orderings, measured through the whole
    // stack on a real workload.
    let costs: Vec<_> = DesignKind::ALL
        .iter()
        .map(|&d| measure(WorkloadId::ImgBin, d))
        .collect();
    // DesignKind::ALL = [Bsa, Gsa, Gmc].
    let (bsa, gsa, gmc) = (&costs[0], &costs[1], &costs[2]);
    assert!(gmc.secs_per_byte() < bsa.secs_per_byte());
    assert!(bsa.secs_per_byte() < gsa.secs_per_byte());
    assert!(gmc.joules_per_byte() < bsa.joules_per_byte());
    assert!(bsa.joules_per_byte() < gsa.joules_per_byte());
}

#[test]
fn hmc_3ds_is_faster_than_ddr4() {
    // §8.2: 3DS designs outperform their DDR4 counterparts.
    let ddr4 = measure_on(WorkloadId::Bc8, DesignKind::Bsa, MemoryKind::Ddr4);
    let hmc = measure_on(WorkloadId::Bc8, DesignKind::Bsa, MemoryKind::Stacked3d);
    // Per-batch time is lower on HMC (faster activations)…
    assert!(hmc.report.time < ddr4.report.time);
    // …but energy per byte is *higher*: small rows do not amortize the
    // per-activation peripheral energy (the paper's Fig. 10 shows 3DS
    // saving ~8x less energy than DDR4 pLUTo).
    assert!(hmc.joules_per_byte() > ddr4.joules_per_byte());
}

#[test]
fn pluto_beats_cpu_on_complex_maps() {
    // The headline comparison, end to end: measured pLUTo throughput vs
    // the CPU roofline on the LUT-heavy workloads.
    let cpu = Machine::xeon_gold_5118();
    for id in [WorkloadId::Vmpc, WorkloadId::ColorGrade, WorkloadId::ImgBin] {
        let cost = measure(id, DesignKind::Gmc);
        let volume = 10e6;
        let wall = pluto_repro::workloads::runner::scaled_wall_time(
            &cost,
            volume,
            16,
            0.0,
            &pluto_repro::dram::TimingParams::ddr4_2400(),
        );
        let cpu_secs = estimate::runtime_secs(&cpu, &profile::workload_profile(id), volume);
        assert!(
            cpu_secs / wall > 1.0,
            "{id}: pLUTo ({wall:.2e}s) should beat CPU ({cpu_secs:.2e}s)"
        );
    }
}

#[test]
fn gsa_reload_tax_visible_at_workload_level() {
    let gsa = measure(WorkloadId::ColorGrade, DesignKind::Gsa);
    let gmc = measure(WorkloadId::ColorGrade, DesignKind::Gmc);
    let ratio = gsa.secs_per_byte() / gmc.secs_per_byte();
    // GSA pays LISA_RBM×N per query on top of the (cheaper) sweep: the
    // slowdown must exceed the pure sweep-latency gap.
    assert!(ratio > 1.5, "GSA/GMC time ratio {ratio}");
}
