//! Bit-stability regression tests for the sim-support PRNG replacement.
//!
//! The workspace's determinism contract: a fixed seed produces identical
//! workload outputs on every run, every platform, every build. These
//! tests pin *exact values* generated through the full stack (seed →
//! SplitMix64 expansion → xoshiro256** stream → samplers → workload
//! generators). If any of them fails, the PRNG or a sampler changed
//! behavior, which silently invalidates every recorded baseline
//! (`BENCH_*.json`, figure CSVs) — treat that as a breaking change, not a
//! test to update casually.

use pluto_repro::analog::{circuit::ActivationScenario, CircuitParams, DesignVariant, MonteCarlo};
use pluto_repro::baselines::WorkloadId;
use pluto_repro::core::session::Session;
use pluto_repro::core::DesignKind;
use pluto_repro::qnn::SyntheticMnist;
use pluto_repro::workloads::gen;
use pluto_repro::workloads::vmpc::Permutation;
use pluto_repro::workloads::workload_for;

#[test]
fn packet_generator_is_bit_stable() {
    let packets = gen::packets(0xF00D, 2, 8);
    assert_eq!(
        packets,
        vec![
            vec![39, 166, 89, 51, 118, 2, 235, 28],
            vec![15, 28, 219, 130, 160, 179, 132, 174],
        ]
    );
    // And across repeated in-process runs.
    assert_eq!(packets, gen::packets(0xF00D, 2, 8));
}

#[test]
fn value_generator_is_bit_stable() {
    assert_eq!(
        gen::values(7, 6, 12),
        vec![1626, 3282, 2454, 576, 792, 3145]
    );
}

#[test]
fn image_generator_is_bit_stable() {
    let img = gen::Image::synthetic(42, 100);
    assert_eq!(
        &img.channels[0][..16],
        &[0, 21, 57, 90, 118, 136, 160, 190, 213, 232, 6, 18, 61, 70, 109, 139]
    );
}

#[test]
fn vmpc_permutation_is_bit_stable() {
    let perm = Permutation::from_key(1234);
    assert_eq!(
        &perm.0[..16],
        &[71, 106, 64, 22, 191, 0, 60, 54, 8, 231, 6, 181, 126, 88, 85, 105]
    );
}

#[test]
fn synthetic_mnist_is_bit_stable() {
    let digits = SyntheticMnist::new(7);
    let sum: i64 = digits.image(3, 0).data().iter().map(|&v| v as i64).sum();
    assert_eq!(sum, 17025);
}

#[test]
fn session_cost_reports_are_bit_stable() {
    // The session API inherits the determinism contract end to end: two
    // independent sessions measuring the same workload produce identical
    // reports down to the f64 bits (fresh-machine isolation plus pinned
    // generator seeds).
    let run = || {
        let mut workload = workload_for(WorkloadId::Vmpc);
        let mut session = Session::builder(DesignKind::Gmc).build().unwrap();
        session.run(workload.as_mut()).unwrap()
    };
    let (a, b) = (run(), run());
    assert!(a.validated);
    assert_eq!(a, b);
    assert_eq!(a.paper_bytes.to_bits(), b.paper_bytes.to_bits());
}

#[test]
fn monte_carlo_latch_time_is_bit_stable() {
    // Exercises the f64 sampling path (Box–Muller over gen_range) through
    // the analog ODE solver; compared at the bit level, not with an
    // epsilon, because determinism is the property under test.
    let mc = MonteCarlo::default();
    let params = CircuitParams::lp22nm();
    let summary = mc.summarize(
        &params,
        DesignVariant::Bsa,
        ActivationScenario::matched_one(),
    );
    assert_eq!(summary.mean_latch_time.to_bits(), 0x3e3f_a273_f0e2_e861);
}
