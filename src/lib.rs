//! # pluto-repro — top-level façade for the pLUTo reproduction workspace
//!
//! This crate re-exports the member crates so that the examples and
//! integration tests can use a single dependency. See the workspace
//! `README.md` for an overview and `DESIGN.md` for the system inventory.

pub use pluto_analog as analog;
pub use pluto_baselines as baselines;
pub use pluto_core as core;
pub use pluto_dram as dram;
pub use pluto_qnn as qnn;
pub use pluto_workloads as workloads;
