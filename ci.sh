#!/usr/bin/env bash
# The full offline CI gate. Run locally before pushing; the GitHub
# workflow (.github/workflows/ci.yml) runs exactly these steps.
#
# Offline invariant: the workspace has zero crates.io dependencies, so
# every step below must succeed with no network and an empty registry.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q (quick mode for the bench-binary smoke tests)"
PLUTO_QUICK=1 cargo test -q --workspace

echo "==> timing-backend differential (tests/timing_backend.rs: analytic == banked bit-for-bit on serial streams)"
PLUTO_QUICK=1 cargo test -q --test timing_backend

echo "==> session API quickstart (examples/session.rs)"
cargo run --release --quiet --example session

echo "==> cluster executor quickstart (examples/cluster.rs)"
cargo run --release --quiet --example cluster

echo "==> 4-worker cluster smoke (fig07 --quick --workers 4)"
cargo run --release --quiet -p pluto-bench --bin fig07_speedup -- --quick --workers 4

echo "==> query-engine throughput guard (benches/query.rs smoke: word-parallel >= 2x scalar packing, warm-plan replay >= 2x issuing)"
PLUTO_QUICK=1 cargo bench -p pluto-bench --bench query

echo "==> partitioned-LUT guard (benches/partition.rs smoke: fused 5.6 path — 4-seg query < 2x single, cached load < the query it serves)"
PLUTO_QUICK=1 cargo bench -p pluto-bench --bench partition

echo "==> serve queue-behavior guard (benches/serve.rs smoke: mixed p99 bounded vs baseline, plan-cache hits live, stealing live)"
PLUTO_QUICK=1 cargo bench -p pluto-bench --bench serve

echo "==> qnn pipeline guard (benches/qnn.rs smoke: warm layers replay plans, direct w8 energy >= 100x nibble, latency <= 2x)"
PLUTO_QUICK=1 cargo bench -p pluto-bench --bench qnn

echo "==> 4-worker MLP smoke (examples/qnn_inference.rs --workers 4: cluster bit-identical to serial)"
cargo run --release --quiet --example qnn_inference -- --workers 4

echo "==> 4-worker serve smoke (examples/serve.rs traffic replay)"
cargo run --release --quiet --example serve -- --workers 4

echo "==> banked-backend serve smoke (examples/serve.rs --timing banked)"
cargo run --release --quiet --example serve -- --workers 4 --timing banked

echo "==> qnn serve smoke (examples/serve.rs --qnn: streamed inference bit-identical to the host oracle)"
cargo run --release --quiet --example serve -- --qnn --workers 4

echo "==> CI green"
