//! Quickstart: define a LUT, run a bulk in-DRAM query, inspect the cost.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pluto_repro::core::prelude::*;

fn main() -> Result<(), PlutoError> {
    // A pLUTo machine over the paper's DDR4 module, using the
    // highest-throughput design (pLUTo-GMC).
    let mut machine = PlutoMachine::ddr4(DesignKind::Gmc)?;

    // Any deterministic function becomes a LUT — here, an 8-bit
    // square-root table (a "complex operation" no prior PuM can run).
    let isqrt = Lut::from_fn("isqrt", 8, 4, |x| (x as f64).sqrt().floor() as u64)?;

    // One bulk query computes the function for thousands of elements at
    // row granularity.
    let inputs: Vec<u64> = (0..2000).map(|i| (i * 37) % 256).collect();
    let result = machine.apply(&isqrt, &inputs)?;

    for (i, &x) in inputs.iter().take(5).enumerate() {
        println!("isqrt({x:3}) = {}", result.values[i]);
    }
    assert!(inputs
        .iter()
        .zip(&result.values)
        .all(|(&x, &y)| y == (x as f64).sqrt().floor() as u64));

    println!("\nelements processed : {}", result.values.len());
    println!("simulated time     : {}", result.time);
    println!("simulated energy   : {}", result.energy);
    println!("DRAM commands      : {}", result.stats);

    // The same call through the full Compiler -> ISA -> Controller stack.
    let via_stack = machine.map(&isqrt, &inputs)?;
    assert_eq!(via_stack.values, result.values);
    println!("\ncompiler/controller path agrees with the fast path ✓");
    Ok(())
}
