//! Image pipeline: color-grade and binarize a synthetic 3-channel image
//! entirely in DRAM (the paper's ImgBin + ColorGrade workloads).
//!
//! ```sh
//! cargo run --release --example image_pipeline
//! ```

use pluto_repro::core::prelude::*;
use pluto_repro::dram::DramConfig;
use pluto_repro::workloads::gen::Image;
use pluto_repro::workloads::image::{
    binarize_pluto, binarize_reference, grade_pluto, GradingCurves,
};

fn main() -> Result<(), PlutoError> {
    // A small image keeps the example fast; the bench harness runs the
    // paper's full 936 000-pixel size.
    let img = Image::synthetic(2024, 4_096);
    println!("input: {} pixels x 3 channels", img.pixels);

    let cfg = DramConfig {
        row_bytes: 1024,
        burst_bytes: 64,
        banks: 2,
        subarrays_per_bank: 16,
        rows_per_subarray: 512,
        ..DramConfig::ddr4_2400()
    };
    let mut machine = PlutoMachine::new(cfg, DesignKind::Bsa)?;

    // Stage 1: cinematic color grade (three 8-bit -> 8-bit curve LUTs).
    let curves = GradingCurves::cinematic();
    let graded = grade_pluto(&mut machine, &img, &curves)?;
    assert_eq!(graded, curves.apply_reference(&img));
    println!("grade   : OK ({} after grading)", machine.totals().time);

    // Stage 2: binarize at the paper's 50% threshold.
    let binary = binarize_pluto(&mut machine, &graded, 128)?;
    assert_eq!(binary, binarize_reference(&graded, 128));

    let on = binary.channels[0].iter().filter(|&&p| p == 255).count();
    println!(
        "binarize: OK ({} of {} red-channel pixels white)",
        on, binary.pixels
    );
    let totals = machine.totals();
    println!(
        "\npipeline total: {} library calls, {} simulated, {} energy",
        totals.calls, totals.time, totals.energy
    );
    Ok(())
}
