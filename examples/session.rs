//! Session quickstart: the unified execution API (`DESIGN.md` §5).
//!
//! Build a [`Session`] from explicit configuration, pick workloads from
//! the registry, run them batched, and scale the measured costs — no
//! hidden globals, no per-workload dispatch tables.
//!
//! ```sh
//! cargo run --release --example session
//! ```

use pluto_repro::baselines::WorkloadId;
use pluto_repro::core::session::{Session, Workload};
use pluto_repro::core::{DesignKind, PlutoError};
use pluto_repro::dram::MemoryKind;
use pluto_repro::workloads::workload_for;

fn main() -> Result<(), PlutoError> {
    // 1. A session over the highest-throughput design. Every knob —
    //    design, memory kind, geometry, SALP, tFAW — is an explicit
    //    builder value with Table 3 defaults.
    let mut session = Session::builder(DesignKind::Gmc).build()?;

    // 2. Pluggable workloads from the registry, run as one batch. Each
    //    run executes the full pLUTo mapping on a fresh machine and
    //    validates the output against the reference implementation.
    // Gamma12's 4096-entry LUT exceeds one 512-row subarray, so its runs
    // route through the §5.6 partitioned path (`DESIGN.md` §8) — same
    // `query()` API, 8 parallel segment sweeps, max-latency/summed-energy
    // cost.
    let ids = [
        WorkloadId::Vmpc,
        WorkloadId::ImgBin,
        WorkloadId::ColorGrade,
        WorkloadId::Add4,
        WorkloadId::Bc8,
        WorkloadId::BitwiseRow,
        WorkloadId::Gamma12,
    ];
    let mut workloads: Vec<Box<dyn Workload>> = ids.iter().map(|&id| workload_for(id)).collect();
    let reports = session.run_all(&mut workloads)?;

    println!(
        "{:<12} {:>14} {:>14} {:>7} {:>10}",
        "workload", "batch time", "batch energy", "acts", "validated"
    );
    for r in &reports {
        println!(
            "{:<12} {:>14} {:>14} {:>7} {:>10}",
            r.workload,
            r.time.to_string(),
            r.energy.to_string(),
            r.acts,
            r.validated
        );
    }
    assert!(reports.iter().all(|r| r.validated));

    // 3. Scale a measured batch to a 100 MB stream under this session's
    //    SALP degree (16 subarrays on DDR4).
    let vmpc = &reports[0];
    println!(
        "\nVMPC over 100 MB @ {} subarrays: {:.3e} s, {:.3e} J",
        session.config().salp_subarrays,
        session.wall_secs(vmpc, 100e6),
        session.energy_joules(vmpc, 100e6),
    );

    // 4. The same workload on 3D-stacked memory: a second, independent
    //    session — kinds compose, there is no global state to restore.
    let mut hmc = Session::builder(DesignKind::Gmc)
        .memory(MemoryKind::Stacked3d)
        .build()?;
    let on_hmc = hmc.run(workload_for(WorkloadId::Vmpc).as_mut())?;
    assert!(on_hmc.validated);
    println!(
        "VMPC batch on 3DS: {} (paper-row scaling x{:.0}, vs x{:.0} on DDR4)",
        on_hmc.time,
        hmc.config().row_ratio(),
        session.config().row_ratio(),
    );
    Ok(())
}
