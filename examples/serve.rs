//! Serve quickstart: replay a recorded query stream through the
//! streaming `Server` (`DESIGN.md` §9).
//!
//! Synthesizes a deterministic "traffic trace" — small tone-map /
//! adder / bit-count queries with an occasional heavyweight partitioned
//! Gamma12 sweep, exactly the PULSAR-style mix — enqueues it in arrival
//! order, and waits each ticket, spot-checking the replies against the
//! serial oracle. Prints per-class latency and the server's scheduling
//! telemetry (batches, occupancy, steals).
//!
//! With `--qnn`, replays inference traffic instead: single-sample
//! quantized MLP forward passes stream through the server as per-layer
//! product + requantization queries (`DESIGN.md` §12), each checked
//! bit-for-bit against the host `i32` oracle.
//!
//! ```sh
//! cargo run --release --example serve            # one worker per CPU
//! cargo run --release --example serve -- --workers 4
//! cargo run --release --example serve -- --timing banked
//! cargo run --release --example serve -- --qnn --workers 4
//! ```

use pluto_repro::baselines::WorkloadId;
use pluto_repro::core::lut::Lut;
use pluto_repro::core::serve::{serial_oracle, QuerySpec, ServeConfig, Server};
use pluto_repro::core::session::ExecConfig;
use pluto_repro::core::{DesignKind, PlutoError};
use pluto_repro::dram::TimingBackend;
use pluto_repro::workloads::serve_lut;
use sim_support::{Rng, SeedableRng, StdRng};
use std::sync::Arc;
use std::time::Instant;

/// One recorded arrival in the replayed trace.
struct TraceEntry {
    class: &'static str,
    spec: QuerySpec,
}

fn registry_lut(id: WorkloadId) -> Arc<Lut> {
    Arc::new(serve_lut(id).expect("workload serves a single LUT"))
}

/// A deterministic 60-query trace: ~1 in 6 arrivals is a 32-element
/// Gamma12 sweep (partitioned across 8 subarray segments); the rest are
/// small latency-class queries.
fn synthesize_trace(seed: u64, timing: TimingBackend) -> Vec<TraceEntry> {
    let add4 = registry_lut(WorkloadId::Add4);
    let bc8 = registry_lut(WorkloadId::Bc8);
    let gamma = registry_lut(WorkloadId::Gamma12);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..60)
        .map(|i| {
            let (class, lut, modulo, len, design) = match i % 6 {
                0 => ("gamma12-sweep", &gamma, 4096u64, 32usize, DesignKind::Gmc),
                1 | 3 => ("add4", &add4, 256, 8, DesignKind::Gmc),
                _ => ("bc8", &bc8, 256, 6, DesignKind::Bsa),
            };
            let mut config = ExecConfig::measurement(design);
            config.timing_backend = timing;
            TraceEntry {
                class,
                spec: QuerySpec {
                    config,
                    lut: Arc::clone(lut),
                    inputs: (0..len).map(|_| rng.gen_range(0..modulo)).collect(),
                },
            }
        })
        .collect()
}

fn parse_workers() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--workers") {
        return args.get(pos + 1).and_then(|v| v.parse().ok());
    }
    std::env::var("PLUTO_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
}

/// `--timing analytic|banked` (or `PLUTO_TIMING`) selects the timing
/// backend every trace query runs on (`DESIGN.md` §11).
fn parse_timing() -> TimingBackend {
    let args: Vec<String> = std::env::args().collect();
    let value = args
        .iter()
        .position(|a| a == "--timing")
        .and_then(|pos| args.get(pos + 1).cloned())
        .or_else(|| std::env::var("PLUTO_TIMING").ok());
    match value.as_deref() {
        Some("banked") => TimingBackend::Banked,
        Some("analytic") | None => TimingBackend::Analytic,
        Some(other) => panic!("unknown --timing '{other}' (expected analytic|banked)"),
    }
}

/// `--qnn` traffic mode: stream single-sample inferences through the
/// server — per layer one signed-product query stream and one
/// requantization query, host PnM-core accumulation in between — and
/// check every sample's logits against the host oracle.
fn qnn_traffic(workers: usize, timing: TimingBackend) -> Result<(), PlutoError> {
    use pluto_repro::qnn::model::{sample_batch, QuantModel};
    use pluto_repro::qnn::pluto_exec::mlp_exec_config;

    let model = QuantModel::mnist_mlp(7);
    let samples = sample_batch(11, 4);
    let mut config = mlp_exec_config(DesignKind::Gmc);
    config.timing_backend = timing;
    println!(
        "streaming {} single-sample inferences on {workers} worker(s), {timing} timing",
        samples.len()
    );
    let mut server = Server::with_workers(workers);
    let start = Instant::now();
    for (digit, x) in &samples {
        let logits = model.serve_infer(&mut server, &config, x)?;
        assert_eq!(
            logits,
            model.forward_reference(x),
            "digit {digit}: served logits must match the host oracle"
        );
        let class = logits
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| **v)
            .map(|(i, _)| i)
            .unwrap();
        println!("  digit {digit}: logits validated bit-for-bit, argmax class {class}");
    }
    let stats = server.stats();
    println!(
        "served in {:.1} ms wall: {} batches across {} affinity classes, plan cache {} hit(s)",
        start.elapsed().as_secs_f64() * 1e3,
        stats.batches,
        stats.affinities,
        server.plan_stats().hits
    );
    println!("all inferences bit-identical to the host i32 oracle");
    Ok(())
}

fn main() -> Result<(), PlutoError> {
    let timing = parse_timing();
    if std::env::args().any(|a| a == "--qnn") {
        let workers = parse_workers().unwrap_or_else(|| ServeConfig::default().workers);
        return qnn_traffic(workers, timing);
    }
    let trace = synthesize_trace(42, timing);
    let config = ServeConfig {
        workers: parse_workers().unwrap_or_else(|| ServeConfig::default().workers),
        batch_slots: 8,
    };
    println!(
        "replaying {} queries on {} worker(s), {} slots per affinity batch, {timing} timing",
        trace.len(),
        config.workers,
        config.batch_slots
    );
    let mut server = Server::new(config);

    // 1. Ingest the whole trace in arrival order. enqueue() never
    //    blocks; affinity batches auto-flush as they fill.
    let start = Instant::now();
    let tickets: Vec<_> = trace
        .iter()
        .map(|e| server.enqueue(e.spec.clone()))
        .collect();
    server.flush();

    // 2. Wait every ticket in arrival order, folding per-class latency
    //    (time from replay start to that reply, i.e. sojourn under the
    //    whole backlog).
    let mut by_class: Vec<(&str, u32, f64, f64)> = Vec::new();
    let (mut row_hits, mut row_misses, mut row_conflicts, mut queue_stalls) =
        (0u64, 0u64, 0u64, 0u64);
    for (entry, ticket) in trace.iter().zip(tickets) {
        let reply = ticket.wait()?;
        let sojourn_ms = start.elapsed().as_secs_f64() * 1e3;
        let time_ns = reply.report.time.as_secs() * 1e9;
        row_hits += reply.report.row_hits;
        row_misses += reply.report.row_misses;
        row_conflicts += reply.report.row_conflicts;
        queue_stalls += reply.report.queue_stalls;
        match by_class.iter_mut().find(|(c, ..)| *c == entry.class) {
            Some((_, n, ms, ns)) => {
                *n += 1;
                *ms = ms.max(sojourn_ms);
                *ns += time_ns;
            }
            None => by_class.push((entry.class, 1, sojourn_ms, time_ns)),
        }
        assert!(reply.report.validated, "{} failed validation", entry.class);
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    // 3. Spot-check three replies against the serial oracle (the full
    //    sweep lives in tests/serve.rs).
    for probe in [0usize, 1, 7] {
        let (values, report) = serial_oracle(&trace[probe].spec)?;
        let mut check = Server::with_workers(1);
        let t = check.enqueue(trace[probe].spec.clone());
        check.flush();
        let reply = t.wait()?;
        assert_eq!(reply.values, values, "query {probe} vs oracle");
        assert_eq!(reply.report, report, "query {probe} report vs oracle");
    }

    println!(
        "\n{:<14} {:>7} {:>16} {:>18}",
        "class", "queries", "last-done (ms)", "device time (ns)"
    );
    for (class, n, ms, ns) in &by_class {
        println!("{class:<14} {n:>7} {ms:>16.2} {ns:>18.1}");
    }
    let stats = server.stats();
    println!(
        "\nreplayed in {wall_ms:.1} ms wall: {} batches ({} full, max occupancy {}), \
         {} affinity classes, {} cross-lane steal(s)",
        stats.batches,
        stats.full_batches,
        stats.max_batch,
        stats.affinities,
        server.steals()
    );
    let plans = server.plan_stats();
    println!(
        "plan cache: {} hit(s), {} miss(es), {} fallback(s) across {} cached plan(s)",
        plans.hits, plans.misses, plans.fallbacks, plans.entries
    );
    println!(
        "{timing} timing: {row_hits} row-buffer hit(s), {row_misses} miss(es), \
         {row_conflicts} conflict(s), {queue_stalls} queue stall(s)"
    );
    println!("all replies validated and spot-checked against the serial oracle");
    Ok(())
}
