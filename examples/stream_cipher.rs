//! Stream-cipher workloads in DRAM: the VMPC one-way function and a
//! Salsa20 core round, both validated against their references.
//!
//! ```sh
//! cargo run --release --example stream_cipher
//! ```

use pluto_repro::core::prelude::*;
use pluto_repro::dram::DramConfig;
use pluto_repro::workloads::gen;
use pluto_repro::workloads::salsa20;
use pluto_repro::workloads::vmpc::{vmpc_pluto, vmpc_reference, Permutation};
use pluto_repro::workloads::wide;

fn main() -> Result<(), PlutoError> {
    // --- VMPC: three chained permutation queries per byte ------------
    let cfg = DramConfig {
        row_bytes: 512,
        burst_bytes: 64,
        banks: 2,
        subarrays_per_bank: 16,
        rows_per_subarray: 512,
        ..DramConfig::ddr4_2400()
    };
    let mut machine = PlutoMachine::new(cfg, DesignKind::Gmc)?;
    let perm = Permutation::from_key(0xC0FFEE);
    let packets = gen::packets(7, 8, gen::CIPHER_PACKET_BYTES);
    let out = vmpc_pluto(&mut machine, &perm, &packets)?;
    assert_eq!(out, vmpc_reference(&perm, &packets));
    println!(
        "VMPC: transformed {} x {} B packets in {} ({} queries)",
        packets.len(),
        gen::CIPHER_PACKET_BYTES,
        machine.totals().time,
        machine.totals().calls,
    );

    // --- Salsa20: one double-round over a block batch ----------------
    let mut machine = wide::test_machine(DesignKind::Gmc)?;
    let states: Vec<[u32; 16]> = (0..8)
        .map(|i| salsa20::initial_state(&[42u8; 32], &[9u8; 8], i))
        .collect();
    let rounds = 1; // the full 20-round core runs in the bench harness
    let out = salsa20::salsa20_core_pluto(&mut machine, &states, rounds)?;
    for (s, o) in states.iter().zip(&out) {
        assert_eq!(*o, salsa20::salsa20_core_reduced(*s, rounds));
    }
    println!(
        "Salsa20: {} blocks x {} double-round(s) in {} ({} LUT-query calls)",
        states.len(),
        rounds,
        machine.totals().time,
        machine.totals().calls,
    );
    println!("\nboth ciphers validated bit-for-bit against their references ✓");
    Ok(())
}
