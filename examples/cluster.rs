//! Cluster quickstart: the sharded parallel executor (`DESIGN.md` §6).
//!
//! Fan a figure sweep out across a worker pool, check the results are
//! bit-identical to the serial session path, and split one oversize
//! batch into shards that reduce to a single validated report.
//!
//! ```sh
//! cargo run --release --example cluster
//! ```

use pluto_repro::baselines::WorkloadId;
use pluto_repro::core::cluster::Cluster;
use pluto_repro::core::session::{ExecConfig, Session, Workload};
use pluto_repro::core::{DesignKind, PlutoError};
use pluto_repro::dram::MemoryKind;
use pluto_repro::workloads::vecops::AddWorkload;
use pluto_repro::workloads::workload_for;

fn config(design: DesignKind, kind: MemoryKind) -> ExecConfig {
    ExecConfig::measurement_on(design, kind)
}

fn main() -> Result<(), PlutoError> {
    // 1. A pool of four workers. Worker count changes wall-clock time
    //    only — results are bit-identical for any pool size.
    let mut cluster = Cluster::new(4);

    // 2. A mini figure sweep: workloads x (design, memory kind) pairs,
    //    submitted as independent jobs. `run` returns the reports in
    //    submission order.
    let ids = [WorkloadId::Vmpc, WorkloadId::ImgBin, WorkloadId::Bc8];
    let mut jobs = Vec::new();
    for &id in &ids {
        for (design, kind) in [
            (DesignKind::Gmc, MemoryKind::Ddr4),
            (DesignKind::Bsa, MemoryKind::Ddr4),
            (DesignKind::Gmc, MemoryKind::Stacked3d),
        ] {
            jobs.push((id, design, kind));
            cluster.submit(config(design, kind), workload_for(id));
        }
    }
    let reports = cluster.run()?;

    println!(
        "{:<12} {:>6} {:>10} {:>14} {:>14} {:>10}",
        "workload", "design", "memory", "batch time", "batch energy", "validated"
    );
    for (report, &(_, design, kind)) in reports.iter().zip(&jobs) {
        println!(
            "{:<12} {:>6} {:>10} {:>14} {:>14} {:>10}",
            report.workload,
            design.to_string(),
            kind.to_string(),
            report.time.to_string(),
            report.energy.to_string(),
            report.validated
        );
    }

    // 3. Determinism check: the cluster's first report equals a serial
    //    session run of the same job, bit for bit.
    let (id, design, kind) = jobs[0];
    let serial = Session::with_config(config(design, kind))?.run(workload_for(id).as_mut())?;
    assert_eq!(reports[0], serial, "cluster must match the serial path");
    println!("\nserial check: cluster report == Session report ({})", id);

    // 4. Shard fan-out: a 10-row ADD4 batch splits into measurement-row
    //    shards, runs across the pool, and reduces to one validated
    //    report covering the whole volume.
    let big = AddWorkload::with_batch(4, 10 * 192);
    println!("shards: {}", big.shards().len());
    cluster.submit_sharded(config(DesignKind::Gmc, MemoryKind::Ddr4), Box::new(big));
    let reduced = cluster.run()?.remove(0);
    assert!(reduced.validated);
    println!(
        "sharded ADD4 (1920 element pairs): time {}, paper bytes {:.0}, validated {}",
        reduced.time, reduced.paper_bytes, reduced.validated
    );
    Ok(())
}
