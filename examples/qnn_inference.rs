//! Quantized inference quickstart (the paper's §9 case study grown into
//! the `DESIGN.md` §12 pipeline): classify synthetic MNIST digits,
//! run the layered GEMV-by-LUT → requantize → forward pass on the
//! simulator — serially on both lowerings (the LoCalut contrast) and
//! sharded across a cluster by output-neuron tile — then print the
//! Table 7 platform comparison with layer-graph-derived query counts.
//!
//! ```sh
//! cargo run --release --example qnn_inference
//! cargo run --release --example qnn_inference -- --workers 4
//! ```

use pluto_repro::core::cluster::Cluster;
use pluto_repro::core::session::Session;
use pluto_repro::core::DesignKind;
use pluto_repro::qnn::gemv::GemvPath;
use pluto_repro::qnn::lenet::{LeNet5, Precision};
use pluto_repro::qnn::mnist::SyntheticMnist;
use pluto_repro::qnn::model::QuantModel;
use pluto_repro::qnn::pluto_exec::{mlp_cluster, mlp_exec_config, qnn_layer_query_counts};
use pluto_repro::qnn::table7::{modeled, published, Platform};

fn parse_workers() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--workers")
        .and_then(|pos| args.get(pos + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

fn main() {
    let digits = SyntheticMnist::new(7);
    for precision in [Precision::Bit1, Precision::Bit4] {
        let net = LeNet5::new(precision, 42);
        print!("{precision:?} predictions for digits 0..9:");
        for d in 0..10u8 {
            print!(" {}", net.classify(&digits.image(d, 0)));
        }
        println!();
    }

    // The layered pipeline, live on the command-level simulator: one
    // digit through the 196->32->16->10 int8 MLP, every multiply a LUT
    // query, every layer requantized through its own direct table.
    let model = QuantModel::mnist_mlp(7);
    let x = QuantModel::input_from_image(&digits.image(4, 0));
    let oracle = model.forward_reference(&x);
    println!("\nMLP forward pass (digit 4), host i32 oracle logits: {oracle:?}");

    for path in GemvPath::ALL {
        let mut session = Session::with_config(mlp_exec_config(DesignKind::Bsa)).expect("session");
        let logits = model
            .forward_on(session.machine_mut(), &x, path)
            .expect("forward pass");
        assert_eq!(logits, oracle, "{path} lowering must match the oracle");
        let totals = session.machine().totals();
        println!(
            "  {path:<7} lowering: {} LUT lookups, simulated {} / {} — bit-identical",
            model.lut_lookups(path),
            totals.time,
            totals.energy
        );
    }

    // The same pass sharded across a cluster by output-neuron tile.
    let workers = parse_workers();
    let mut cluster = Cluster::new(workers);
    let (logits, report) = mlp_cluster(
        &mut cluster,
        mlp_exec_config(DesignKind::Bsa),
        &model,
        &x,
        GemvPath::Direct,
    )
    .expect("cluster forward pass");
    assert_eq!(logits, oracle, "cluster must be bit-identical to serial");
    println!(
        "  cluster ({workers} workers): validated={}, simulated {} — bit-identical to the oracle",
        report.validated, report.time
    );

    println!("\nTable 7 (published | modeled), query counts derived from the layer graph:");
    for precision in [Precision::Bit1, Precision::Bit4] {
        let net = LeNet5::new(precision, 42);
        let per_layer: Vec<String> = qnn_layer_query_counts(&net)
            .into_iter()
            .map(|(name, queries)| format!("{name}={queries}"))
            .collect();
        println!("  {precision:?} ({}):", per_layer.join(" "));
        for p in Platform::ALL {
            let pb = published(p, precision);
            let md = modeled(p, precision);
            println!(
                "    {:<12} {:>7.0} us | {:>9.1} us      {:>6.2} mJ | {:>7.3} mJ",
                p.to_string(),
                pb.time_us,
                md.time_us,
                pb.energy_mj,
                md.energy_mj
            );
        }
    }
}
