//! Quantized LeNet-5 inference (the paper's §9 case study): classify
//! synthetic MNIST digits with the 1-bit and 4-bit networks, run the
//! binary XNOR-popcount kernel on the simulator, and print the Table 7
//! platform comparison.
//!
//! ```sh
//! cargo run --release --example qnn_inference
//! ```

use pluto_repro::core::DesignKind;
use pluto_repro::qnn::lenet::{binary_dot_reference, LeNet5, Precision};
use pluto_repro::qnn::mnist::SyntheticMnist;
use pluto_repro::qnn::pluto_exec::{binary_dot_pluto, qnn_session};
use pluto_repro::qnn::table7::{modeled, published, Platform};

fn main() {
    let digits = SyntheticMnist::new(7);
    for precision in [Precision::Bit1, Precision::Bit4] {
        let net = LeNet5::new(precision, 42);
        print!("{precision:?} predictions for digits 0..9:");
        for d in 0..10u8 {
            print!(" {}", net.classify(&digits.image(d, 0)));
        }
        println!();
    }

    // The binary inner-product kernel, live on the command-level simulator.
    let net = LeNet5::new(Precision::Bit1, 42);
    let img = digits.image(4, 0);
    let x = net.quantize_input(&img);
    let a: Vec<u8> = x.data()[..256].iter().map(|&v| u8::from(v > 0)).collect();
    let w: Vec<u8> = net.fc1.weights[..256]
        .iter()
        .map(|&v| u8::from(v > 0))
        .collect();
    let mut session = qnn_session(DesignKind::Bsa).expect("session");
    let dot = binary_dot_pluto(
        &mut session,
        std::slice::from_ref(&a),
        std::slice::from_ref(&w),
    )
    .expect("kernel");
    assert_eq!(dot[0], binary_dot_reference(&a, &w));
    println!(
        "\nXNOR-popcount dot product on pLUTo: {} (simulated {})",
        dot[0],
        session.machine().totals().time
    );

    println!("\nTable 7 (published | modeled):");
    for precision in [Precision::Bit1, Precision::Bit4] {
        println!("  {precision:?}:");
        for p in Platform::ALL {
            let pb = published(p, precision);
            let md = modeled(p, precision);
            println!(
                "    {:<12} {:>7.0} us | {:>9.1} us      {:>6.2} mJ | {:>7.3} mJ",
                p.to_string(),
                pb.time_us,
                md.time_us,
                pb.energy_mj,
                md.energy_mj
            );
        }
    }
}
